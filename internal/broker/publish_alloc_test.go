package broker

import (
	"bufio"
	"io"
	"net"
	"testing"

	"safeweb/internal/event"
	"safeweb/internal/label"
)

// discardBroker is a minimal STOMP endpoint for publish-side allocation
// measurements: it completes the CONNECT handshake and then discards all
// inbound bytes. Running the real server here would add its own decode
// and routing allocations to the process-wide counters AllocsPerRun
// reads, hiding what the client costs.
func discardBroker(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				if _, err := br.ReadBytes(0); err != nil { // CONNECT frame
					return
				}
				if _, err := conn.Write([]byte("CONNECTED\nsession:1\nversion:1.1\ncontent-length:0\n\n\x00")); err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, br)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// benchEvent builds the publish-path regression shape: a labelled,
// attr-carrying event with a small body.
func benchEvent() *event.Event {
	ev := event.New("/patient_report",
		map[string]string{"patient_id": "33812769", "type": "cancer"},
		label.Conf("ecric.org.uk/mdt/7"))
	ev.Body = []byte(`{"summary": "report", "mdt": 7}`)
	return ev
}

// TestClientPublishAllocs pins the producer fast path's allocation budget
// in the style of the DecodeView/EncodeImage tests: once an event's SEND
// image is memoised, republishing it must not allocate at all (budget
// ≤ 1 alloc/op guards against regression, steady state is 0), and the
// fast path must cost at most half of what the legacy map path pays for
// the same publish — the ISSUE's ≥50% per-publish allocation reduction,
// asserted structurally.
func TestClientPublishAllocs(t *testing.T) {
	c, err := DialBus(discardBroker(t), ClientConfig{Login: "producer"})
	if err != nil {
		t.Fatalf("DialBus: %v", err)
	}
	defer func() { _ = c.shards[0].conn.Close() }() // no DISCONNECT: the sink never replies

	ev := benchEvent()
	if err := c.Publish(ev); err != nil { // freeze + warm the image memo
		t.Fatalf("Publish: %v", err)
	}
	fast := testing.AllocsPerRun(500, func() {
		if err := c.Publish(ev); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	})
	if fast > 1 {
		t.Errorf("steady-state Publish allocs/op = %g, want <= 1", fast)
	}

	legacy := testing.AllocsPerRun(500, func() {
		if err := c.publishLegacy(ev); err != nil {
			t.Fatalf("publishLegacy: %v", err)
		}
	})
	if fast > legacy/2 {
		t.Errorf("fast path = %g allocs/op, legacy = %g: want fast <= legacy/2", fast, legacy)
	}

	// Cold events (image built on first publish) must still undercut the
	// legacy path, which re-marshals map and frame every time.
	events := make([]*event.Event, 600)
	for i := range events {
		events[i] = benchEvent()
	}
	i := 0
	cold := testing.AllocsPerRun(500, func() {
		if err := c.Publish(events[i]); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		i++
	})
	t.Logf("Publish allocs/op: steady-state %g, cold %g, legacy %g", fast, cold, legacy)
	if cold > legacy {
		t.Errorf("cold-event fast path = %g allocs/op, legacy = %g: want fast <= legacy", cold, legacy)
	}
}

// TestClientPublishDraftAllocs pins the producer-side draft pool: a
// producer that builds each publish with NewDraft and recycles it with
// ReleasePublished after the publish completes pays only for the SEND
// image itself — the Event struct and its attribute map come from the
// pool — so the per-publish cost drops below the cold-event fast path
// (which allocates a fresh event and map every time) and stays within a
// fixed small budget.
func TestClientPublishDraftAllocs(t *testing.T) {
	c, err := DialBus(discardBroker(t), ClientConfig{Login: "producer"})
	if err != nil {
		t.Fatalf("DialBus: %v", err)
	}
	defer func() { _ = c.shards[0].conn.Close() }() // no DISCONNECT: the sink never replies

	body := []byte(`{"summary": "report", "mdt": 7}`)
	publishDraft := func() {
		ev := event.NewDraft("/patient_report")
		if err := ev.Set("patient_id", "33812769"); err != nil {
			t.Fatalf("Set: %v", err)
		}
		if err := ev.Set("type", "cancer"); err != nil {
			t.Fatalf("Set: %v", err)
		}
		ev.Body = body
		if err := c.Publish(ev); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		ev.ReleasePublished()
	}
	// Warm the pool: the first drafts allocate their structs and maps,
	// which then recycle for the measured runs.
	for i := 0; i < 8; i++ {
		publishDraft()
	}

	draft := testing.AllocsPerRun(500, publishDraft)

	// The same publish with a fresh New event every time — the cold path
	// the draft pool exists to undercut.
	cold := testing.AllocsPerRun(500, func() {
		ev := event.New("/patient_report",
			map[string]string{"patient_id": "33812769", "type": "cancer"})
		ev.Body = body
		if err := c.Publish(ev); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	})
	t.Logf("Publish allocs/op: draft %g, cold new-event %g", draft, cold)
	if draft > 2 {
		t.Errorf("draft Publish allocs/op = %g, want <= 2 (image memo and buffer only)", draft)
	}
	if draft >= cold {
		t.Errorf("draft = %g allocs/op, cold new-event = %g: pooling must undercut", draft, cold)
	}
}
