// Package lint is safeweb's static-analysis suite: a set of
// golang.org/x/tools/go/analysis analyzers that turn the hot-path and
// lifecycle invariants documented in ROADMAP.md into CI-failing
// diagnostics. The cmd/safeweb-vet multichecker runs them over the whole
// tree; convention-only rules become mechanical checks that hold as more
// hands touch the fast paths.
//
// # Analyzers
//
// frozenmutate enforces the freeze-at-publish contract: an event handed
// to a broker Publish (Broker.Publish, Client.Publish, Endpoint.Publish)
// or explicitly frozen with Event.Freeze is immutable. The analyzer flags
// Event.Set calls, field writes (Topic, Body) and attribute-map writes on
// an event after a freeze point in the same function, and any mutation of
// the event parameter inside a SubscribeWire or SubscribeTap handler
// literal — wire and tap handlers receive the shared frozen original, so
// a mutation there corrupts every other subscriber's view.
//
// noretain enforces goroutine confinement and pooling lifecycles: a
// stomp.FrameView or stomp.HeaderView is invalidated by the next decode,
// an engine.Context is reset between callbacks, and event.DecodeCache and
// event.LabelCache are goroutine-confined memo tables. The analyzer flags
// values of those types escaping their confinement — stored to a struct
// field or package-level variable, sent on a channel, or handed to a
// goroutine (as a `go` argument or captured by a `go` closure) — outside
// the package that defines the type (the owner manages its own storage).
// It also tracks pooled delivery events: the *event.Event parameter of a
// subscription callback literal (Broker/Client/Endpoint.Subscribe,
// InitContext.Subscribe) is recycled by Event.Release when the callback
// returns, so the same escapes are flagged for it (Clone what outlives
// the callback).
//
// policygen is the compile-time form of the label package's
// TestPolicyMutatorsBumpGeneration/TestPolicyMethodsClassified pair, and
// shares the same classification list (the policyMutators/policyReaders
// maps, which live in a non-test file so both the test and the analyzer
// see them): every exported method on label.Policy must be classified as
// exactly one of mutator or reader; every classified mutator must bump
// the generation counter (a gen.Add call in its body or transitively in
// an unexported same-package callee); no reader may touch it; and stale
// classification entries naming methods that no longer exist are
// reported.
//
// hotpathlock enforces the lock-free, allocation-free discipline of the
// fan-out and encode fast paths. A function annotated with a
// //safeweb:hotpath directive — and every unexported same-package
// function it transitively calls — must not take a sync mutex
// (Lock/RLock), allocate a map or slice literal (composite literals and
// make), call package fmt, or box a non-pointer value into an interface.
// Calls the analyzer cannot resolve statically (interface methods,
// function-typed fields) are not followed; keep hot-path helpers
// concrete.
//
// # Directives
//
// //safeweb:hotpath in a function's doc comment opts it into hotpathlock
// checking, transitively through its unexported same-package helpers.
//
// //lint:ignore <analyzer>[,<analyzer>...] <reason> suppresses the named
// analyzers' diagnostics on the directly following line (or on its own
// line, for an end-of-line comment). The reason is mandatory — an ignore
// without one is itself reported — so every suppression carries its
// justification in the source. For hotpathlock, an ignored call site also
// stops the transitive walk into that callee: suppressing the call into a
// declared slow path keeps the rest of the hot function checked.
//
// # Running
//
// CI builds cmd/safeweb-vet and runs it over the tree as a required
// fast-fail step. Locally:
//
//	go build -o "$(go env GOPATH)/bin/safeweb-vet" ./cmd/safeweb-vet
//	go vet -vettool="$(which safeweb-vet)" ./...
//
// or standalone, which re-execs go vet with itself as the vettool:
//
//	safeweb-vet ./...
package lint
