package stomp

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to every decode path and checks the
// cross-path invariants the conformance corpus pins on canonical frames:
//
//   - no decode path may panic, whatever the input;
//   - ReadFrame, a fresh Decoder.Decode, and DecodeView (materialised)
//     agree on success/failure and, on success, on the decoded frame;
//   - decoded bodies respect MaxBodyLen on every path;
//   - a decoded frame re-encodes and decodes to itself (round-trip
//     stability), so anything the decoder accepts is representable.
func FuzzDecode(f *testing.F) {
	for _, tc := range conformanceCorpus() {
		f.Add([]byte(tc.wire))
	}
	// A few shapes the corpus does not cover.
	f.Add([]byte("SEND\n" + strings.Repeat("k:v\n", 300) + "\n\x00")) // header-count limit
	f.Add([]byte("MESSAGE\ncontent-length:100\n\n"))                  // truncated body
	f.Add(bytes.Repeat([]byte{'\n'}, 64))                             // heart-beats, clean EOF

	f.Fuzz(func(t *testing.T, data []byte) {
		legacy, errLegacy := ReadFrame(bufio.NewReader(bytes.NewReader(data)))
		fresh, errFresh := NewDecoder(bytes.NewReader(data)).Decode()
		view, errView := NewDecoder(bytes.NewReader(data)).DecodeView()

		if (errLegacy == nil) != (errFresh == nil) || (errLegacy == nil) != (errView == nil) {
			t.Fatalf("decode paths disagree on error: ReadFrame=%v Decode=%v DecodeView=%v",
				errLegacy, errFresh, errView)
		}
		if errLegacy != nil {
			return
		}

		materialised := view.Materialize()
		if !framesEquivalent(legacy, fresh) || !framesEquivalent(legacy, materialised) {
			t.Fatalf("decode paths disagree:\nReadFrame:  %v\nDecode:     %v\nDecodeView: %v",
				legacy, fresh, materialised)
		}
		if len(legacy.Body) > MaxBodyLen || len(view.Body) > MaxBodyLen {
			t.Fatalf("decoded body of %d bytes exceeds MaxBodyLen", len(legacy.Body))
		}
		// View accessors agree with the materialised map.
		for k, v := range materialised.Headers {
			if got := view.Headers.Header(k); got != v {
				t.Fatalf("view Header(%q) = %q, want %q", k, got, v)
			}
		}

		// Round-trip stability: re-encode and decode back.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, legacy); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		back, err := ReadFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !framesEquivalent(legacy, back) {
			t.Fatalf("round trip changed frame:\nbefore: %v\nafter:  %v", legacy, back)
		}
	})
}

// FuzzHeaderEscape checks the header escaping pair: escape→unescape is the
// identity on arbitrary strings, and unescaping arbitrary bytes never
// panics — it either fails or produces something that re-escapes to the
// canonical form of the same value.
func FuzzHeaderEscape(f *testing.F) {
	f.Add("plain")
	f.Add("line1\nline2:with\\colon\rand-cr")
	f.Add(`trailing\`)
	f.Add(`bad\q`)
	f.Add("")
	f.Add("\\c\\n\\r\\\\")

	f.Fuzz(func(t *testing.T, s string) {
		esc := appendEscapedHeader(nil, s)
		back, err := unescapeHeaderBytes(esc)
		if err != nil {
			t.Fatalf("unescape(escape(%q)) failed: %v", s, err)
		}
		if back != s {
			t.Fatalf("unescape(escape(%q)) = %q", s, back)
		}

		// Arbitrary input: must not panic; on success the value must be
		// canonically representable.
		val, err := unescapeHeaderBytes([]byte(s))
		if err != nil {
			return
		}
		canon := appendEscapedHeader(nil, val)
		reback, err := unescapeHeaderBytes(canon)
		if err != nil || reback != val {
			t.Fatalf("canonical re-escape of %q broke: %q, %v", val, reback, err)
		}
	})
}

// FuzzParseCredit pins the fail-closed contract of the credit/ACK header
// parser: arbitrary input must never panic, and only positive in-range
// decimal int64 values may ever be accepted as a grant — negative, zero,
// overflowing and non-numeric inputs must all be rejected, returning a
// zero credit with an error.
func FuzzParseCredit(f *testing.F) {
	for _, seed := range []string{
		"", "1", "0", "-1", "64", "credit", "1e3", " 1", "+1", "0x10",
		"9223372036854775807", "9223372036854775808",
		"-9223372036854775808", "99999999999999999999999999", "1\x00", "١",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := ParseCredit(s)
		if err != nil {
			if n != 0 {
				t.Fatalf("ParseCredit(%q) = %d with error %v; a rejected grant must be zero", s, n, err)
			}
			return
		}
		if n <= 0 {
			t.Fatalf("ParseCredit(%q) accepted non-positive credit %d", s, n)
		}
		// An accepted value must round-trip through its canonical form.
		m, err := ParseCredit(strconv.FormatInt(n, 10))
		if err != nil || m != n {
			t.Fatalf("canonical re-parse of %d = %d, %v", n, m, err)
		}
	})
}
