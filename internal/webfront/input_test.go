package webfront

import (
	"net/http"
	"strings"
	"testing"

	"safeweb/internal/label"
	"safeweb/internal/taint"
)

// TestXSSGuardBlocksUnsanitisedEcho: a handler that echoes user input
// without sanitisation must have its response blocked — the §4.4
// injection-attack defence.
func TestXSSGuardBlocksUnsanitisedEcho(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	app.Get("/echo/:msg", func(c *Ctx) error {
		c.Write(taint.NewString("you said: ").Concat(c.ParamTainted("msg")))
		return nil
	})
	app.Get("/echo-safe/:msg", func(c *Ctx) error {
		c.Write(taint.NewString("you said: ").Concat(c.ParamTainted("msg").SanitizeHTML()))
		return nil
	})
	app.Get("/search", func(c *Ctx) error {
		c.Write(c.Query("q").SanitizeHTML())
		return nil
	})

	// Unsanitised echo: blocked even though the user is authenticated and
	// the data is the user's own input.
	resp, body := get(t, app, "/echo/hello", "alice", "pw-a")
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("unsanitised echo status = %d", resp.StatusCode)
	}
	if strings.Contains(body, "you said") {
		t.Error("unsanitised echo leaked")
	}

	// Sanitised echo: served, escaped.
	resp, body = get(t, app, "/echo-safe/%3Cscript%3E", "alice", "pw-a")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sanitised echo status = %d", resp.StatusCode)
	}
	if strings.Contains(body, "<script>") {
		t.Errorf("script tag not escaped: %q", body)
	}
	if !strings.Contains(body, "&lt;script&gt;") {
		t.Errorf("escaped form missing: %q", body)
	}

	// Query parameters flow the same way.
	resp, body = get(t, app, "/search?q=%22quoted%22", "alice", "pw-a")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "&#34;quoted&#34;") {
		t.Errorf("query echo = %d %q", resp.StatusCode, body)
	}
}

// TestXSSGuardIndependentOfClearance: even a user with clearance for
// everything cannot receive unsanitised input back — the guard is not a
// label-privilege check.
func TestXSSGuardIndependentOfClearance(t *testing.T) {
	app, db := newTestApp(t, Config{})
	u, err := db.FindUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	// Grant alice clearance over everything, including (nonsensically)
	// the internal namespace; the guard must still block.
	db.GrantLabel(u.ID, label.Clearance, label.MustParsePattern("label:conf:*"))
	app.Get("/echo/:msg", func(c *Ctx) error {
		c.Write(c.ParamTainted("msg"))
		return nil
	})
	resp, _ := get(t, app, "/echo/x", "alice", "pw-a")
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
