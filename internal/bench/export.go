package bench

import (
	"bufio"
	"bytes"
	"fmt"

	"safeweb/internal/event"
	"safeweb/internal/stomp"
)

// Pipeline is the exported handle to the synthetic backend pipeline, for
// the repository-level testing.B benchmarks.
type Pipeline struct {
	p *backendPipeline
}

// NewPipelineForBench builds the producer→relay→sink pipeline and returns
// it with its completion channel (one signal per event that reaches the
// sink).
func NewPipelineForBench(network bool) (*Pipeline, <-chan struct{}, error) {
	p, err := newBackendPipeline(network)
	if err != nil {
		return nil, nil, err
	}
	return &Pipeline{p: p}, p.done, nil
}

// Publish sends one benchmark event, labelled when tracking is set.
func (p *Pipeline) Publish(seq int, tracking bool) error {
	return p.p.publish(seq, tracking)
}

// Stop tears the pipeline down.
func (p *Pipeline) Stop() { p.p.stop() }

// StompRoundTripForBench encodes and decodes a representative labelled
// event n times through the full wire path (event → headers → frame →
// bytes → frame → event); it returns the first error.
func StompRoundTripForBench(n int) error {
	ev := event.New("/bench", map[string]string{"seq": "1"}, benchLabels()...)
	ev.Body = append([]byte(nil), benchBody...)
	for i := 0; i < n; i++ {
		headers, body, err := event.MarshalHeaders(ev)
		if err != nil {
			return err
		}
		f := stomp.NewFrame(stomp.CmdSend)
		for k, v := range headers {
			f.SetHeader(k, v)
		}
		f.Body = body
		var buf bytes.Buffer
		if err := stomp.WriteFrame(&buf, f); err != nil {
			return err
		}
		back, err := stomp.ReadFrame(bufio.NewReader(&buf))
		if err != nil {
			return err
		}
		if _, err := event.UnmarshalHeaders(back.Headers, back.Body); err != nil {
			return err
		}
	}
	if n < 0 {
		return fmt.Errorf("bench: negative iteration count")
	}
	return nil
}
