package webfront

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"safeweb/internal/docstore"
	"safeweb/internal/label"
	"safeweb/internal/taint"
	"safeweb/internal/template"
	"safeweb/internal/webdb"
)

var (
	mdt7 = label.Conf("ecric.org.uk/mdt/7")
	mdt8 = label.Conf("ecric.org.uk/mdt/8")
)

// newTestApp builds an app with two users: "alice" cleared for mdt/7 and
// "bob" cleared for mdt/8.
func newTestApp(t *testing.T, cfg Config) (*App, *webdb.DB) {
	t.Helper()
	db := webdb.New()
	alice, err := db.CreateUser("alice", "pw-a", webdb.WithMDT("mdt-7", "region-1"))
	if err != nil {
		t.Fatal(err)
	}
	db.GrantLabel(alice.ID, label.Clearance, label.Exact(mdt7))
	bob, err := db.CreateUser("bob", "pw-b", webdb.WithMDT("mdt-8", "region-1"))
	if err != nil {
		t.Fatal(err)
	}
	db.GrantLabel(bob.ID, label.Clearance, label.Exact(mdt8))

	cfg.WebDB = db
	cfg.Logf = t.Logf
	app, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return app, db
}

func get(t *testing.T, app *App, path, user, pass string) (*http.Response, string) {
	t.Helper()
	srv := httptest.NewServer(app)
	defer srv.Close()
	req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if user != "" {
		req.SetBasicAuth(user, pass)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestAuthenticationRequired(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	app.Get("/x", func(c *Ctx) error {
		c.WriteString("ok")
		return nil
	})

	resp, _ := get(t, app, "/x", "", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("no auth: %d", resp.StatusCode)
	}
	resp, _ = get(t, app, "/x", "alice", "wrong")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("bad password: %d", resp.StatusCode)
	}
	if app.Stats().AuthFailures != 1 {
		t.Errorf("AuthFailures = %d", app.Stats().AuthFailures)
	}
	resp, body := get(t, app, "/x", "alice", "pw-a")
	if resp.StatusCode != http.StatusOK || body != "ok" {
		t.Errorf("good auth: %d %q", resp.StatusCode, body)
	}
}

func TestPublicRoute(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	app.GetPublic("/health", func(c *Ctx) error {
		c.WriteString("up")
		return nil
	})
	resp, body := get(t, app, "/health", "", "")
	if resp.StatusCode != http.StatusOK || body != "up" {
		t.Errorf("public route: %d %q", resp.StatusCode, body)
	}
}

func TestPathParams(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	app.Get("/records/:mid/:pid", func(c *Ctx) error {
		c.WriteString(c.Param("mid") + "/" + c.Param("pid"))
		return nil
	})
	resp, body := get(t, app, "/records/7/123", "alice", "pw-a")
	if resp.StatusCode != http.StatusOK || body != "7/123" {
		t.Errorf("params: %d %q", resp.StatusCode, body)
	}
	resp, _ = get(t, app, "/records/7", "alice", "pw-a")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("partial path: %d", resp.StatusCode)
	}
}

func TestReleaseCheckAllowsClearedUser(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	app.Get("/data", func(c *Ctx) error {
		c.Write(taint.NewString("mdt7-secret", mdt7))
		return nil
	})
	resp, body := get(t, app, "/data", "alice", "pw-a")
	if resp.StatusCode != http.StatusOK || body != "mdt7-secret" {
		t.Errorf("cleared user: %d %q", resp.StatusCode, body)
	}
}

func TestReleaseCheckBlocksUnclearedUser(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	app.Get("/data", func(c *Ctx) error {
		c.Write(taint.NewString("mdt7-secret", mdt7))
		return nil
	})
	resp, body := get(t, app, "/data", "bob", "pw-b")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("uncleared user: %d", resp.StatusCode)
	}
	if strings.Contains(body, "mdt7-secret") {
		t.Fatal("blocked response leaked data")
	}
	if app.Stats().Blocked != 1 {
		t.Errorf("Blocked = %d", app.Stats().Blocked)
	}
	violations := app.Violations()
	if len(violations) != 1 || violations[0].Username != "bob" || violations[0].Missing != mdt7 {
		t.Errorf("violations = %+v", violations)
	}
}

func TestDisableTrackingSkipsCheck(t *testing.T) {
	app, _ := newTestApp(t, Config{DisableTracking: true})
	app.Get("/data", func(c *Ctx) error {
		c.Write(taint.NewString("mdt7-secret", mdt7))
		return nil
	})
	resp, body := get(t, app, "/data", "bob", "pw-b")
	if resp.StatusCode != http.StatusOK || body != "mdt7-secret" {
		t.Errorf("tracking disabled: %d %q — the baseline must disclose", resp.StatusCode, body)
	}
}

func TestMixedLabelsNeedFullClearance(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	app.Get("/mixed", func(c *Ctx) error {
		c.Write(taint.NewString("a", mdt7))
		c.Write(taint.NewString("b", mdt8))
		return nil
	})
	// Alice holds mdt7 only; the mixed response must be blocked.
	resp, _ := get(t, app, "/mixed", "alice", "pw-a")
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("mixed response: %d", resp.StatusCode)
	}
}

func TestHandlerErrors(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	app.Get("/missing", func(c *Ctx) error { return ErrNotFound("record") })
	app.Get("/forbidden", func(c *Ctx) error { return ErrForbidden("no") })
	app.Get("/boom", func(c *Ctx) error { return io.ErrUnexpectedEOF })

	resp, _ := get(t, app, "/missing", "alice", "pw-a")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("ErrNotFound: %d", resp.StatusCode)
	}
	resp, _ = get(t, app, "/forbidden", "alice", "pw-a")
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("ErrForbidden: %d", resp.StatusCode)
	}
	resp, _ = get(t, app, "/boom", "alice", "pw-a")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("generic error: %d", resp.StatusCode)
	}
	resp, _ = get(t, app, "/no-such-route", "alice", "pw-a")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route: %d", resp.StatusCode)
	}
}

func TestWrapDocCarriesLabels(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	store := docstore.New("app", docstore.Options{})
	doc, err := store.Put("r", json.RawMessage(`{"name":"Smith"}`), label.NewSet(mdt7), "")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := store.Get(doc.ID)
	wrapped, err := app.WrapDoc(got)
	if err != nil {
		t.Fatalf("WrapDoc: %v", err)
	}
	if !wrapped.GetString("name").Labels().Contains(mdt7) {
		t.Error("WrapDoc lost labels")
	}

	list, err := app.WrapDocs([]*docstore.Document{got, got})
	if err != nil || len(list) != 2 {
		t.Fatalf("WrapDocs: %v", err)
	}

	// With tracking disabled, wrapping is unlabelled.
	appOff, _ := newTestApp(t, Config{DisableTracking: true})
	plain, err := appOff.WrapDoc(got)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.GetString("name").Labels().IsEmpty() {
		t.Error("DisableTracking still labelled")
	}
}

func TestRenderTemplateAccumulatesLabels(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	tmpl := template.MustParse("page", "<h1><%= name %></h1>")
	app.Get("/page", func(c *Ctx) error {
		return c.Render(tmpl, template.Context{"name": taint.NewString("Smith", mdt7)})
	})

	// Cleared: page renders with content type.
	resp, body := get(t, app, "/page", "alice", "pw-a")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "Smith") {
		t.Errorf("cleared render: %d %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
	// Uncleared: blocked.
	resp, body = get(t, app, "/page", "bob", "pw-b")
	if resp.StatusCode != http.StatusForbidden || strings.Contains(body, "Smith") {
		t.Errorf("uncleared render: %d %q", resp.StatusCode, body)
	}
}

func TestRenderErrorPropagates(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	tmpl := template.MustParse("bad", "<%= missing %>")
	app.Get("/page", func(c *Ctx) error {
		return c.Render(tmpl, template.Context{})
	})
	resp, _ := get(t, app, "/page", "alice", "pw-a")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("render error: %d", resp.StatusCode)
	}
}

func TestJSONHelper(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	app.Get("/j", func(c *Ctx) error {
		s, err := taint.Doc{"k": taint.NewString("v", mdt7)}.ToJSON()
		if err != nil {
			return err
		}
		c.JSON(s)
		return nil
	})
	resp, body := get(t, app, "/j", "alice", "pw-a")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var decoded map[string]string
	if err := json.Unmarshal([]byte(body), &decoded); err != nil || decoded["k"] != "v" {
		t.Errorf("body = %q", body)
	}
}

func TestOnRequestPhases(t *testing.T) {
	var got []PhaseTimes
	app, _ := newTestApp(t, Config{
		AuthWork:  100,
		OnRequest: func(p PhaseTimes) { got = append(got, p) },
	})
	app.Get("/x", func(c *Ctx) error {
		c.Write(taint.NewString("s", mdt7))
		return nil
	})
	srv := httptest.NewServer(app)
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/x", nil)
	req.SetBasicAuth("alice", "pw-a")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if len(got) != 1 {
		t.Fatalf("OnRequest calls = %d", len(got))
	}
	p := got[0]
	if p.Status != http.StatusOK {
		t.Errorf("status = %d", p.Status)
	}
	if p.Auth <= 0 || p.Handler < 0 || p.LabelCheck < 0 {
		t.Errorf("phases = %+v", p)
	}
}

func TestStatusOverride(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	app.Post("/create", func(c *Ctx) error {
		c.Status(http.StatusCreated)
		c.WriteString("made")
		return nil
	})
	srv := httptest.NewServer(app)
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/create", nil)
	req.SetBasicAuth("alice", "pw-a")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing WebDB accepted")
	}
}
