package label

import (
	"path/filepath"
	"testing"
)

// TestExamplePolicyFileLoads keeps policies/mdt-example.json — the sample
// shipped for cmd/safeweb-broker — loadable and semantically sensible.
func TestExamplePolicyFileLoads(t *testing.T) {
	path := filepath.Join("..", "..", "policies", "mdt-example.json")
	p, err := LoadPolicy(path)
	if err != nil {
		t.Fatalf("LoadPolicy(%s): %v", path, err)
	}
	if !p.IsPrivileged("mdt-data-producer") || !p.IsPrivileged("mdt-data-storage") {
		t.Error("privileged units lost their flag")
	}
	if p.IsPrivileged("mdt-data-aggregator") {
		t.Error("aggregator must not be privileged")
	}
	agg := p.PrivilegesOf("mdt-data-aggregator")
	if !agg.Has(Clearance, Conf("ecric.org.uk/mdt/7")) {
		t.Error("aggregator clearance missing")
	}
	if agg.Has(Declassify, Conf("ecric.org.uk/mdt/7")) {
		t.Error("aggregator must not declassify")
	}
	bridge := p.PrivilegesOf("bridge-out")
	if bridge.Has(Clearance, Conf("ecric.org.uk/patient/1")) {
		t.Error("bridge can read patient data — export policy broken")
	}
	if !bridge.Has(Clearance, Conf("ecric.org.uk/regional-agg")) {
		t.Error("bridge missing aggregate clearance")
	}
}
