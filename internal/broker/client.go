package broker

import (
	"crypto/tls"
	"time"

	"safeweb/internal/event"
	"safeweb/internal/stomp"
)

// ClientConfig configures a networked broker client.
type ClientConfig struct {
	// Login is the policy principal this client acts as.
	Login string
	// Passcode authenticates the login.
	Passcode string
	// TLS enables transport security.
	TLS *tls.Config
	// SendTimeout bounds receipt-confirmed publishes; zero means
	// fire-and-forget SENDs.
	SendTimeout time.Duration
	// OnError receives asynchronous errors (decode failures, server
	// errors); nil drops them.
	OnError func(error)
}

// Client is a Bus implementation over a remote STOMP broker. It lets an
// engine (or any producer/consumer) run in a different process or network
// zone from the broker, as in the paper's ECRIC deployment where the event
// broker is a separate service inside the Intranet (Fig. 4).
type Client struct {
	cfg   ClientConfig
	stomp *stomp.Client

	// labelCache memoises label-header parses across deliveries. All
	// subscription handlers run on the connection's read goroutine, so
	// the cache is goroutine-confined.
	labelCache event.LabelCache
}

var _ Bus = (*Client)(nil)

// DialBus connects to a broker server.
func DialBus(addr string, cfg ClientConfig) (*Client, error) {
	c := &Client{cfg: cfg}
	sc, err := stomp.Dial(addr, stomp.ClientConfig{
		Login:    cfg.Login,
		Passcode: cfg.Passcode,
		TLS:      cfg.TLS,
		OnError:  cfg.OnError,
	})
	if err != nil {
		return nil, err
	}
	c.stomp = sc
	return c, nil
}

// Publish implements Bus.
func (c *Client) Publish(ev *event.Event) error {
	headers, body, err := event.MarshalHeaders(ev)
	if err != nil {
		return err
	}
	dest := headers[event.HeaderDestination]
	delete(headers, event.HeaderDestination)
	if c.cfg.SendTimeout > 0 {
		return c.stomp.SendReceipt(dest, headers, body, c.cfg.SendTimeout)
	}
	return c.stomp.Send(dest, headers, body)
}

// Subscribe implements Bus.
func (c *Client) Subscribe(topic, sel string, handler Handler) (string, error) {
	return c.stomp.Subscribe(topic, sel, nil, func(f *stomp.Frame) {
		ev, err := event.UnmarshalHeadersCached(f.Headers, f.Body, &c.labelCache)
		if err != nil {
			if c.cfg.OnError != nil {
				c.cfg.OnError(err)
			}
			return
		}
		handler(ev)
	})
}

// Unsubscribe implements Bus.
func (c *Client) Unsubscribe(id string) error { return c.stomp.Unsubscribe(id) }

// Close implements Bus with a graceful disconnect.
func (c *Client) Close() error { return c.stomp.Disconnect(5 * time.Second) }
