package broker

import (
	"crypto/tls"
	"fmt"
	"log"
	"strconv"
	"sync"
	"sync/atomic"

	"safeweb/internal/event"
	"safeweb/internal/stomp"
)

// ServerConfig configures the STOMP network front of a broker.
type ServerConfig struct {
	// Authenticate validates CONNECT credentials; nil accepts everyone
	// (deployments inside the Intranet zone rely on network partitioning,
	// paper Fig. 4; DMZ-facing brokers must set this).
	Authenticate stomp.Authenticator
	// TLS enables transport security ("extended with SSL support at the
	// transport layer", §4.2).
	TLS *tls.Config
	// Logf logs; nil uses log.Printf.
	Logf func(format string, args ...any)
	// OnDeliveryError observes deliveries the network front had to drop —
	// an event that matched a subscription but could not be marshalled
	// for the wire. A mediating broker must leave an audit trail for any
	// suppressed flow, so nil falls back to Logf; the drop is always
	// counted in Stats().DroppedDeliveries. The hook runs on the
	// delivering (publish) goroutine and must not block.
	OnDeliveryError func(sessionID uint64, subscription string, ev *event.Event, err error)
}

// ServerStats counts network-front activity not visible in the core
// broker's Stats.
type ServerStats struct {
	// DroppedDeliveries counts matched deliveries dropped because the
	// event could not be marshalled into a MESSAGE frame.
	DroppedDeliveries uint64
}

// Server exposes a Broker over STOMP. Logins name the policy principal of
// the connection; SUBSCRIBE and SEND frames are translated to broker
// operations with label semantics preserved.
type Server struct {
	broker *Broker
	stomp  *stomp.Server
	cfg    ServerConfig

	droppedDeliveries atomic.Uint64

	mu       sync.Mutex
	sessions map[uint64]*serverSession
}

type serverSession struct {
	sess *stomp.Session
	// subs maps the client-chosen subscription id to the broker
	// subscription.
	subs map[string]*Subscription

	// idPrefix is the session's message-id prefix ("m-<session>-");
	// msgSeq numbers messages within it without touching the server lock.
	idPrefix string
	msgSeq   atomic.Uint64

	// decCache memoises label-header parses and the destination string
	// for this session's inbound SENDs; OnFrameView runs on the session
	// read goroutine only.
	decCache event.DecodeCache
}

// NewServer starts a STOMP front for the broker on addr.
func NewServer(addr string, b *Broker, cfg ServerConfig) (*Server, error) {
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	srv := &Server{
		broker:   b,
		cfg:      cfg,
		sessions: make(map[uint64]*serverSession),
	}
	st, err := stomp.NewServer(addr, stomp.ServerConfig{
		Handler:      srv,
		Authenticate: cfg.Authenticate,
		TLS:          cfg.TLS,
		Logf:         cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	srv.stomp = st
	return srv, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.stomp.Addr() }

// Close shuts down the network front (the broker itself stays open).
func (s *Server) Close() error { return s.stomp.Close() }

// Stats returns a snapshot of network-front counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{DroppedDeliveries: s.droppedDeliveries.Load()}
}

// OnConnect implements stomp.SessionHandler.
func (s *Server) OnConnect(sess *stomp.Session, login string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions[sess.ID()] = &serverSession{
		sess:     sess,
		subs:     make(map[string]*Subscription),
		idPrefix: "m-" + strconv.FormatUint(sess.ID(), 10) + "-",
	}
	return nil
}

// OnDisconnect implements stomp.SessionHandler.
func (s *Server) OnDisconnect(sess *stomp.Session) {
	s.mu.Lock()
	ss := s.sessions[sess.ID()]
	delete(s.sessions, sess.ID())
	s.mu.Unlock()
	if ss == nil {
		return
	}
	for _, sub := range ss.subs {
		s.broker.Unsubscribe(sub)
	}
}

// OnFrame implements stomp.SessionHandler. The stomp server prefers the
// OnFrameView fast path and only reaches this adapter through callers that
// hold a materialised frame.
func (s *Server) OnFrame(sess *stomp.Session, f *stomp.Frame) error {
	return s.OnFrameView(sess, stomp.ViewFromFrame(f))
}

// OnFrameView implements stomp.FrameViewHandler: the map-free inbound
// path. SEND frames — the hot path — go straight from the decoder's
// header view to an event in one pass (event.UnmarshalView); control
// frames pull the few headers they need as owned strings.
func (s *Server) OnFrameView(sess *stomp.Session, v *stomp.FrameView) error {
	s.mu.Lock()
	ss := s.sessions[sess.ID()]
	s.mu.Unlock()
	if ss == nil {
		return fmt.Errorf("broker: no session state for %d", sess.ID())
	}

	switch v.Command {
	case stomp.CmdSend:
		ev, err := event.UnmarshalView(&v.Headers, v.Body, &ss.decCache)
		if err != nil {
			return err
		}
		return s.broker.Publish(sess.Login(), ev)

	case stomp.CmdSubscribe:
		clientID := v.Headers.Header(stomp.HdrID)
		if clientID == "" {
			return fmt.Errorf("broker: SUBSCRIBE without id header")
		}
		topic := v.Headers.Header(stomp.HdrDestination)
		sel := v.Headers.Header(stomp.HdrSelector)
		// A wire subscription: delivery only serialises the event, so the
		// broker hands over the frozen original — every session and shard
		// then shares one event pointer and one wire image per publish.
		sub, err := s.broker.SubscribeWire(sess.Login(), topic, sel, func(ev *event.Event) {
			s.deliver(ss, clientID, ev)
		})
		if err != nil {
			return err
		}
		s.mu.Lock()
		ss.subs[clientID] = sub
		s.mu.Unlock()
		return nil

	case stomp.CmdUnsubscribe:
		clientID := v.Headers.Header(stomp.HdrID)
		s.mu.Lock()
		sub := ss.subs[clientID]
		delete(ss.subs, clientID)
		s.mu.Unlock()
		s.broker.Unsubscribe(sub)
		return nil

	case stomp.CmdAck, stomp.CmdNack, stomp.CmdBegin, stomp.CmdCommit, stomp.CmdAbort:
		// Auto-ack, no transactions: accepted and ignored.
		return nil

	default:
		return fmt.Errorf("broker: unsupported command %s", v.Command)
	}
}

// deliver sends a matched event to a session as a MESSAGE frame. The
// event's wire image — canonical header block plus body — is encoded once
// per published event (Event.WireImage) and shared across every matching
// subscription on every session and shard; only the per-delivery
// subscription and message-id routing headers are encoded per send, and
// they exist only on the wire. The frames feed the session's coalescing
// writer, so a fan-out burst costs one flush.
//
// An event that cannot be marshalled was validated at publish, so this
// "cannot happen in practice" — but a mediating broker must not lose a
// matched delivery silently, so the drop is counted and reported through
// ServerConfig.OnDeliveryError.
func (s *Server) deliver(ss *serverSession, clientSubID string, ev *event.Event) {
	img, err := ev.WireImage()
	if err != nil {
		s.dropDelivery(ss, clientSubID, ev, err)
		return
	}
	seq := ss.msgSeq.Add(1)
	// Session teardown races are handled by OnDisconnect.
	_ = ss.sess.SendMessageImage(img, clientSubID, ss.idPrefix, seq)
}

// dropDelivery records a matched delivery the network front had to drop.
func (s *Server) dropDelivery(ss *serverSession, clientSubID string, ev *event.Event, err error) {
	s.droppedDeliveries.Add(1)
	if s.cfg.OnDeliveryError != nil {
		s.cfg.OnDeliveryError(ss.sess.ID(), clientSubID, ev, err)
		return
	}
	s.cfg.Logf("broker: dropped delivery to session %d sub %s: %v", ss.sess.ID(), clientSubID, err)
}
