// Package broker implements SafeWeb's IFC-aware event broker (paper §4.2).
//
// Units communicate by publishing events and subscribing to topics with
// optional SQL-92 content selectors. The broker matches subscriptions
// against published events and additionally filters by security label:
// "for an event to be delivered to a subscriber, the set of its
// confidentiality labels must be a subset of those labels for which the
// subscriber possesses clearance privileges."
//
// # Performance architecture
//
// The publish→deliver path is built so that label enforcement costs close
// to nothing in the common case:
//
//   - Indexed routing. Subscriptions are compiled once at Subscribe time
//     into a route table — an exact-topic map, a list of "/*" prefix
//     routes, and the "*" catch-all list. The table is immutable and
//     swapped atomically on subscription churn (copy-on-write), so Publish
//     routes with a single atomic load and no lock, touching only the
//     subscriptions that can match instead of scanning all of them.
//
//   - Cached clearance. Each subscription caches its principal's
//     privileges, invalidated by the policy's generation counter. The
//     per-delivery policy lock + privilege clone of the naive design
//     happens only after a policy change; steady-state delivery checks
//     clearance against the cached snapshot. Unlabelled events skip the
//     privilege machinery entirely, and the event's confidentiality
//     partition is computed once per publish, not per subscriber.
//
//   - Zero-copy delivery. Published events are frozen by convention, so
//     delivery shares everything immutable — topic, body, label set and
//     the precomputed label wire header — between the publisher and all
//     subscribers. Only the attribute map is copied per subscriber (a
//     buggy unit mutating its input must not affect its peers);
//     attribute-free events are delivered with no copy at all.
//
// The core Broker is transport-independent; package-level Server and
// Client types expose it over the STOMP wire protocol with the paper's
// label-header extensions. The networked wire path is map-free in both
// directions: deliveries share one preencoded MESSAGE image per published
// event, and Client.Publish sends a frozen event's memoised SEND image
// with no intermediate header map — optionally pipelined through a
// receipt-confirmed publish window (ClientConfig.PublishWindow) and
// sharded per topic (ClientConfig.PublishShards).
//
// # Credit-based flow control
//
// Consumers can bound how far the broker may run ahead of them. With
// ClientConfig.SubscribeCredit = n the client's SUBSCRIBE advertises a
// delivery window of n messages (the credit header); the Server tracks
// granted-versus-sent per wire subscription with atomic counters and
// parks matched deliveries in a bounded per-subscription pending ring
// (ServerConfig.CreditPending) once the window is exhausted, falling
// back to the session's overflow policy only if the ring also fills.
// The client replenishes by sending ACK frames carrying cumulative
// credit grants — batched at the half-window low-water mark and driven
// by the delivery events' Release lifecycle, so credit reflects
// callbacks the consumer engine actually completed, not frames it
// merely received. Grants are idempotent (applied max-wins), stalls are
// observable (ServerStats.CreditStalls, SessionStats.CreditParked, the
// OnCreditStall hook), and subscriptions without the header keep the
// exact uncredited wire behaviour. Unknown or malformed client frames
// — ACKs without a usable grant, transactions — are answered with an
// ERROR naming the command and counted in ServerStats.UnhandledFrames.
package broker

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"safeweb/internal/event"
	"safeweb/internal/label"
	"safeweb/internal/selector"
)

// Handler consumes events delivered to a subscription. Delivered events
// share their body and label set with the publisher; handlers may mutate
// the attribute map of events that carry attributes, but must treat the
// body as read-only.
type Handler func(ev *event.Event)

// ErrClosed is returned by operations on a closed broker.
var ErrClosed = errors.New("broker: closed")

// Stats counts broker activity; useful for tests, monitoring and the
// evaluation harness.
type Stats struct {
	// Published counts accepted publishes.
	Published uint64
	// Delivered counts events handed to subscription handlers.
	Delivered uint64
	// FilteredByLabel counts deliveries suppressed because the event's
	// confidentiality labels were not covered by subscriber clearance.
	FilteredByLabel uint64
	// FilteredBySelector counts deliveries suppressed by content
	// selectors.
	FilteredBySelector uint64
	// RejectedPublish counts publishes rejected by validation or
	// integrity-endorsement checks.
	RejectedPublish uint64
}

// clearanceSnapshot is a subscription's cached view of its principal's
// privileges, tagged with the policy generation it was read at.
type clearanceSnapshot struct {
	gen   uint64
	privs *label.Privileges
}

// Subscription is a registered subscription. Its topic pattern is compiled
// once at Subscribe time into one of three route classes (exact topic,
// "/*" prefix, "*" catch-all).
type Subscription struct {
	id        uint64
	idStr     string
	principal string
	topic     string
	// matchAll is set for the "*" pattern; prefix is non-empty for
	// trailing-"/*" patterns and holds the prefix including the slash.
	matchAll bool
	prefix   string
	sel      *selector.Selector
	hasSel   bool
	handler  Handler
	// wire marks a wire subscription (SubscribeWire): the handler gets
	// the frozen published event itself instead of a per-subscriber
	// Delivery copy.
	wire bool

	// clearance caches the principal's privileges; it is refreshed when
	// the policy generation moves. Concurrent refreshes are benign (both
	// compute the same snapshot).
	clearance atomic.Pointer[clearanceSnapshot]
}

// ID returns the broker-unique subscription identifier.
func (s *Subscription) ID() string { return s.idStr }

// Topic returns the subscribed topic pattern.
func (s *Subscription) Topic() string { return s.topic }

// routeTable is the immutable routing index consulted by Publish. A new
// table is built under the broker lock on every subscription change and
// installed with an atomic store, so the publish path never locks.
type routeTable struct {
	closed bool
	exact  map[string][]*Subscription
	prefix []prefixRoute
	global []*Subscription
}

// prefixRoute groups the subscriptions of one "/*" pattern prefix.
type prefixRoute struct {
	prefix string
	subs   []*Subscription
}

var closedTable = &routeTable{closed: true}

// Broker is the in-process IFC-aware event broker. It is safe for
// concurrent use. Delivery is synchronous with respect to Publish: the
// engine layers its own per-callback goroutines on top, mirroring the
// paper's architecture where the STOMP client spawns a thread per
// callback.
type Broker struct {
	policy *label.Policy

	mu     sync.RWMutex // guards subs, nextID, closed and route rebuilds
	subs   map[uint64]*Subscription
	nextID uint64
	closed bool

	routes atomic.Pointer[routeTable]
	taps   atomic.Pointer[[]*tap]

	published          atomic.Uint64
	delivered          atomic.Uint64
	filteredByLabel    atomic.Uint64
	filteredBySelector atomic.Uint64
	rejectedPublish    atomic.Uint64
}

// New creates a broker enforcing the given policy. A nil policy denies all
// privileged operations but still routes unlabelled events.
func New(policy *label.Policy) *Broker {
	if policy == nil {
		policy = label.NewPolicy()
	}
	b := &Broker{
		policy: policy,
		subs:   make(map[uint64]*Subscription),
	}
	b.routes.Store(&routeTable{})
	return b
}

// Policy returns the broker's policy, e.g. for dynamic delegation.
func (b *Broker) Policy() *label.Policy { return b.policy }

// classifyTopic compiles a topic pattern into its route class: the "*"
// catch-all, a trailing-"/*" prefix (returned including the slash), or an
// exact topic. It is the single source of pattern semantics, shared by
// Subscribe's route compilation and TopicMatches.
func classifyTopic(pattern string) (matchAll bool, prefix string) {
	switch {
	case pattern == "*":
		return true, ""
	case strings.HasSuffix(pattern, "/*"):
		return false, strings.TrimSuffix(pattern, "*")
	default:
		return false, ""
	}
}

// TopicMatches reports whether a subscription topic pattern covers a
// published topic. Patterns are exact topics, a trailing "/*" wildcard
// covering any deeper path, or "*" covering everything.
func TopicMatches(pattern, topic string) bool {
	matchAll, prefix := classifyTopic(pattern)
	switch {
	case matchAll:
		return true
	case prefix != "":
		return strings.HasPrefix(topic, prefix)
	default:
		return pattern == topic
	}
}

// Subscribe registers a subscription for the named principal. The
// principal's clearance is read from the broker policy and cached per
// subscription; policy updates bump the policy generation and so apply to
// existing subscriptions on their next delivery. The selector source may
// be empty for no content filtering.
func (b *Broker) Subscribe(principal, topic, sel string, handler Handler) (*Subscription, error) {
	return b.subscribe(principal, topic, sel, handler, false)
}

// SubscribeWire registers a wire subscription: the handler receives the
// frozen published event itself, with no per-subscriber attribute copy.
// It exists for transports that only serialise the event — the STOMP
// network front delivers through it, so every session and shard sees the
// same event pointer and the event's wire image (Event.WireImage) is
// encoded once per publish rather than once per session. Wire handlers
// must never mutate the event or hand it to code that might.
func (b *Broker) SubscribeWire(principal, topic, sel string, handler Handler) (*Subscription, error) {
	return b.subscribe(principal, topic, sel, handler, true)
}

func (b *Broker) subscribe(principal, topic, sel string, handler Handler, wire bool) (*Subscription, error) {
	if handler == nil {
		return nil, errors.New("broker: nil handler")
	}
	if topic == "" {
		return nil, errors.New("broker: empty topic")
	}
	compiled, err := selector.Parse(sel)
	if err != nil {
		return nil, fmt.Errorf("broker: bad selector: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	b.nextID++
	sub := &Subscription{
		id:        b.nextID,
		idStr:     "sub-" + strconv.FormatUint(b.nextID, 10),
		principal: principal,
		topic:     topic,
		sel:       compiled,
		hasSel:    compiled.Source() != "",
		handler:   handler,
		wire:      wire,
	}
	sub.matchAll, sub.prefix = classifyTopic(topic)
	b.subs[sub.id] = sub
	b.rebuildRoutesLocked()
	return sub, nil
}

// tap is a publish observer registered with SubscribeTap: a compiled
// topic pattern and a handler invoked for every accepted publish the
// pattern covers, before any subscriber delivery and with no clearance or
// selector filtering.
type tap struct {
	id       uint64
	matchAll bool
	prefix   string
	topic    string
	fn       Handler
}

// SubscribeTap registers a publish tap: fn observes every accepted
// publish whose topic the pattern covers (same pattern grammar as
// Subscribe), bypassing both clearance and selectors. It exists for the
// durable journal, which must record every event on a durable topic —
// clearance is re-checked at replay time against the then-current policy,
// so filtering at write time would silently erase history a later grant
// should be able to read. Taps receive the frozen published event and, like
// wire handlers, must never mutate it. The returned function removes the
// tap; removing twice is a no-op.
func (b *Broker) SubscribeTap(pattern string, fn Handler) (remove func(), err error) {
	if fn == nil {
		return nil, errors.New("broker: nil tap handler")
	}
	if pattern == "" {
		return nil, errors.New("broker: empty tap pattern")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	b.nextID++
	t := &tap{id: b.nextID, topic: pattern, fn: fn}
	t.matchAll, t.prefix = classifyTopic(pattern)

	old := b.taps.Load()
	var taps []*tap
	if old != nil {
		taps = append(taps, *old...)
	}
	taps = append(taps, t)
	b.taps.Store(&taps)

	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		cur := b.taps.Load()
		if cur == nil {
			return
		}
		next := make([]*tap, 0, len(*cur))
		for _, x := range *cur {
			if x.id != t.id {
				next = append(next, x)
			}
		}
		b.taps.Store(&next)
	}, nil
}

// runTaps invokes every tap matching the published topic. Called on the
// publishing goroutine after Freeze, before subscriber delivery, so a
// durable append is sequenced ahead of the fan-out that announces it.
func (b *Broker) runTaps(ev *event.Event) {
	tp := b.taps.Load()
	if tp == nil {
		return
	}
	for _, t := range *tp {
		switch {
		case t.matchAll:
		case t.prefix != "":
			if !strings.HasPrefix(ev.Topic, t.prefix) {
				continue
			}
		default:
			if t.topic != ev.Topic {
				continue
			}
		}
		t.fn(ev)
	}
}

// Unsubscribe removes a subscription. Removing an already-removed
// subscription is a no-op.
func (b *Broker) Unsubscribe(sub *Subscription) {
	if sub == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[sub.id]; !ok {
		return
	}
	delete(b.subs, sub.id)
	if !b.closed {
		b.rebuildRoutesLocked()
	}
}

// rebuildRoutesLocked compiles the current subscription set into a fresh
// immutable route table and installs it. Callers hold b.mu.
func (b *Broker) rebuildRoutesLocked() {
	rt := &routeTable{exact: make(map[string][]*Subscription)}
	prefixes := make(map[string][]*Subscription)
	for _, sub := range b.subs {
		switch {
		case sub.matchAll:
			rt.global = append(rt.global, sub)
		case sub.prefix != "":
			prefixes[sub.prefix] = append(prefixes[sub.prefix], sub)
		default:
			rt.exact[sub.topic] = append(rt.exact[sub.topic], sub)
		}
	}
	for p, subs := range prefixes {
		sortSubs(subs)
		rt.prefix = append(rt.prefix, prefixRoute{prefix: p, subs: subs})
	}
	sort.Slice(rt.prefix, func(i, j int) bool { return rt.prefix[i].prefix < rt.prefix[j].prefix })
	for _, subs := range rt.exact {
		sortSubs(subs)
	}
	sortSubs(rt.global)
	b.routes.Store(rt)
}

// sortSubs orders subscriptions by registration so delivery order within a
// route class is deterministic.
func sortSubs(subs []*Subscription) {
	sort.Slice(subs, func(i, j int) bool { return subs[i].id < subs[j].id })
}

// deliveryCounters accumulates per-publish statistics so the hot loop
// performs one atomic update per counter per publish instead of one per
// subscriber.
type deliveryCounters struct {
	delivered          uint64
	filteredByLabel    uint64
	filteredBySelector uint64
}

// Publish validates and dispatches an event published by the named
// principal. Confidentiality labels may be attached freely ("it is always
// possible to add extra confidentiality labels to events", §4.1), but
// attaching an integrity label requires the endorsement privilege.
//
// The published event is frozen by this call: the publisher must not
// mutate it afterwards. Subscribers share the event's immutable parts;
// only the attribute map is copied per subscriber so that a buggy unit
// mutating its input cannot affect its peers.
//
//safeweb:hotpath
func (b *Broker) Publish(principal string, ev *event.Event) error {
	if err := ev.Validate(); err != nil {
		b.rejectedPublish.Add(1)
		return err
	}
	if integ := ev.Labels.Integrity(); !integ.IsEmpty() {
		privs := b.policy.PrivilegesOf(principal)
		for l := range integ {
			if !privs.Has(label.Endorse, l) {
				b.rejectedPublish.Add(1)
				return &label.FlowError{
					Op: "endorse", Label: l, Principal: principal,
					Reason: "publishing an integrity label requires the endorsement privilege",
				}
			}
		}
	}

	rt := b.routes.Load()
	if rt.closed {
		return ErrClosed
	}

	b.published.Add(1)
	ev.Freeze()
	b.runTaps(ev)
	conf := ev.Labels.Confidentiality()
	var gen uint64
	if !conf.IsEmpty() {
		gen = b.policy.Generation()
	}

	var ctr deliveryCounters
	b.deliverAll(rt.exact[ev.Topic], ev, conf, gen, &ctr)
	for i := range rt.prefix {
		if strings.HasPrefix(ev.Topic, rt.prefix[i].prefix) {
			b.deliverAll(rt.prefix[i].subs, ev, conf, gen, &ctr)
		}
	}
	b.deliverAll(rt.global, ev, conf, gen, &ctr)

	if ctr.delivered > 0 {
		b.delivered.Add(ctr.delivered)
	}
	if ctr.filteredByLabel > 0 {
		b.filteredByLabel.Add(ctr.filteredByLabel)
	}
	if ctr.filteredBySelector > 0 {
		b.filteredBySelector.Add(ctr.filteredBySelector)
	}
	return nil
}

// deliverAll runs the label and selector checks for one route-class slice
// and invokes matching handlers.
func (b *Broker) deliverAll(subs []*Subscription, ev *event.Event, conf label.Set, gen uint64, ctr *deliveryCounters) {
	for _, sub := range subs {
		if !conf.IsEmpty() {
			cs := sub.clearance.Load()
			if cs == nil || cs.gen != gen {
				cs = &clearanceSnapshot{gen: gen, privs: b.policy.PrivilegesOf(sub.principal)}
				sub.clearance.Store(cs)
			}
			if !cs.privs.HasAll(label.Clearance, conf) {
				ctr.filteredByLabel++
				continue
			}
		}
		if sub.hasSel && !sub.sel.MatchesAttrs(ev.Attrs) {
			ctr.filteredBySelector++
			continue
		}
		ctr.delivered++
		if sub.wire {
			sub.handler(ev) // frozen original; the transport only serialises it
		} else {
			sub.handler(ev.Delivery())
		}
	}
}

// Stats returns a snapshot of broker counters.
func (b *Broker) Stats() Stats {
	return Stats{
		Published:          b.published.Load(),
		Delivered:          b.delivered.Load(),
		FilteredByLabel:    b.filteredByLabel.Load(),
		FilteredBySelector: b.filteredBySelector.Load(),
		RejectedPublish:    b.rejectedPublish.Load(),
	}
}

// Close marks the broker closed and removes all subscriptions.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.subs = make(map[uint64]*Subscription)
	b.routes.Store(closedTable)
}

// Endpoint returns a Bus view of the broker bound to one principal. The
// engine hands each unit an endpoint for its own principal so that units
// cannot spoof each other's identity.
func (b *Broker) Endpoint(principal string) *Endpoint {
	return &Endpoint{broker: b, principal: principal}
}

// Bus is the event communication interface units see: publish and
// subscribe bound to a fixed principal. Both the in-process Endpoint and
// the networked Client implement it, so an engine can run against either a
// local or a remote broker.
type Bus interface {
	// Publish sends an event.
	Publish(ev *event.Event) error
	// Subscribe registers a handler; it returns an opaque subscription id.
	Subscribe(topic, sel string, handler Handler) (string, error)
	// Unsubscribe cancels a subscription by id.
	Unsubscribe(id string) error
	// Close releases the bus.
	Close() error
}

// Endpoint adapts a Broker to the Bus interface for one principal.
type Endpoint struct {
	broker    *Broker
	principal string

	mu   sync.Mutex
	subs map[string]*Subscription
}

var _ Bus = (*Endpoint)(nil)

// Principal returns the principal this endpoint acts as.
func (e *Endpoint) Principal() string { return e.principal }

// Publish implements Bus.
func (e *Endpoint) Publish(ev *event.Event) error {
	return e.broker.Publish(e.principal, ev)
}

// Subscribe implements Bus.
func (e *Endpoint) Subscribe(topic, sel string, handler Handler) (string, error) {
	sub, err := e.broker.Subscribe(e.principal, topic, sel, handler)
	if err != nil {
		return "", err
	}
	e.mu.Lock()
	if e.subs == nil {
		e.subs = make(map[string]*Subscription)
	}
	e.subs[sub.ID()] = sub
	e.mu.Unlock()
	return sub.ID(), nil
}

// Unsubscribe implements Bus.
func (e *Endpoint) Unsubscribe(id string) error {
	e.mu.Lock()
	sub := e.subs[id]
	delete(e.subs, id)
	e.mu.Unlock()
	if sub == nil {
		return fmt.Errorf("broker: unknown subscription %q", id)
	}
	e.broker.Unsubscribe(sub)
	return nil
}

// Close implements Bus: it cancels this endpoint's subscriptions but
// leaves the broker running.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	subs := e.subs
	e.subs = nil
	e.mu.Unlock()
	for _, sub := range subs {
		e.broker.Unsubscribe(sub)
	}
	return nil
}
