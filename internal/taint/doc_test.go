package taint

import (
	"encoding/json"
	"strings"
	"testing"

	"safeweb/internal/label"
)

func TestWrapJSON(t *testing.T) {
	raw := []byte(`{
		"name": "John Smith",
		"age": 61,
		"alive": true,
		"tumour": {"site": "C50.9", "stage": 2},
		"treatments": ["surgery", "radiotherapy"],
		"notes": null
	}`)
	labels := label.NewSet(mdt7)
	doc, err := WrapJSON(raw, labels)
	if err != nil {
		t.Fatalf("WrapJSON: %v", err)
	}

	if got := doc.GetString("name"); got.Raw() != "John Smith" || !got.Labels().Contains(mdt7) {
		t.Errorf("name = %q %v", got.Raw(), got.Labels())
	}
	if got := doc.GetNumber("age"); got.Float() != 61 || !got.Labels().Contains(mdt7) {
		t.Errorf("age = %v %v", got.Float(), got.Labels())
	}
	sub := doc.GetDoc("tumour")
	if sub == nil {
		t.Fatal("nested doc missing")
	}
	if got := sub.GetString("site"); got.Raw() != "C50.9" || !got.Labels().Contains(mdt7) {
		t.Errorf("site = %q %v", got.Raw(), got.Labels())
	}
	list, ok := doc["treatments"].([]any)
	if !ok || len(list) != 2 {
		t.Fatalf("treatments = %T", doc["treatments"])
	}
	first, ok := list[0].(String)
	if !ok || !first.Labels().Contains(mdt7) {
		t.Errorf("treatment[0] = %v", list[0])
	}

	if _, err := WrapJSON([]byte("not json"), labels); err == nil {
		t.Error("WrapJSON accepted garbage")
	}
}

func TestDocLabelsComposition(t *testing.T) {
	doc := Doc{
		"a": NewString("x", mdt7),
		"b": NewNumber(1, mdt8),
		"c": "plain",
	}
	got := doc.Labels()
	if !got.Contains(mdt7) || !got.Contains(mdt8) {
		t.Errorf("Labels = %v", got)
	}
	// Integrity is fragile: the plain field drops it.
	docI := Doc{
		"a": WrapString("x", label.NewSet(integ)),
		"b": "plain",
	}
	if docI.Labels().Contains(integ) {
		t.Error("integrity survived mixed doc")
	}
}

func TestDocToJSON(t *testing.T) {
	doc := Doc{
		"patient_id": NewString("33812769", mdt7),
		"survival":   NewNumber(0.82, mdt8),
		"nested":     Doc{"k": NewString("v", mdt7)},
		"list":       []any{NewString("a", mdt7), 2.0},
		"plain":      "public",
	}
	s, err := doc.ToJSON()
	if err != nil {
		t.Fatalf("ToJSON: %v", err)
	}
	if !s.Labels().Contains(mdt7) || !s.Labels().Contains(mdt8) {
		t.Errorf("labels = %v", s.Labels())
	}
	var back map[string]any
	if err := json.Unmarshal([]byte(s.Raw()), &back); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	if back["patient_id"] != "33812769" || back["plain"] != "public" {
		t.Errorf("round trip = %v", back)
	}
	nested, _ := back["nested"].(map[string]any)
	if nested["k"] != "v" {
		t.Errorf("nested = %v", back["nested"])
	}
}

func TestToJSONList(t *testing.T) {
	docs := []Doc{
		{"id": NewString("1", mdt7)},
		{"id": NewString("2", mdt8)},
	}
	s, err := ToJSONList(docs)
	if err != nil {
		t.Fatalf("ToJSONList: %v", err)
	}
	if !s.Labels().Contains(mdt7) || !s.Labels().Contains(mdt8) {
		t.Errorf("labels = %v", s.Labels())
	}
	var back []map[string]any
	if err := json.Unmarshal([]byte(s.Raw()), &back); err != nil || len(back) != 2 {
		t.Fatalf("round trip: %v %v", back, err)
	}
}

func TestDocRoundTripWrapMarshal(t *testing.T) {
	// WrapJSON then ToJSON must reproduce equivalent JSON and carry
	// the wrap labels.
	raw := []byte(`{"a": "x", "b": [1, {"c": true}], "d": null}`)
	doc, err := WrapJSON(raw, label.NewSet(mdt7))
	if err != nil {
		t.Fatalf("WrapJSON: %v", err)
	}
	s, err := doc.ToJSON()
	if err != nil {
		t.Fatalf("ToJSON: %v", err)
	}
	if !s.Labels().Contains(mdt7) {
		t.Errorf("labels = %v", s.Labels())
	}
	var orig, round any
	if err := json.Unmarshal(raw, &orig); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(s.Raw()), &round); err != nil {
		t.Fatal(err)
	}
	origJSON, _ := json.Marshal(orig)
	roundJSON, _ := json.Marshal(round)
	if string(origJSON) != string(roundJSON) {
		t.Errorf("round trip changed document:\n%s\n%s", origJSON, roundJSON)
	}
}

func TestDocGettersMissing(t *testing.T) {
	doc := Doc{"n": NewNumber(1)}
	if !doc.GetString("missing").IsEmpty() {
		t.Error("missing string not empty")
	}
	if doc.GetNumber("missing").Float() != 0 {
		t.Error("missing number not zero")
	}
	if doc.GetDoc("missing") != nil {
		t.Error("missing doc not nil")
	}
	// Wrong type also yields zero values.
	if !doc.GetString("n").IsEmpty() {
		t.Error("number as string not empty")
	}
}

func TestDocStringHidesContent(t *testing.T) {
	doc := Doc{"secret": NewString("classified", mdt7)}
	s := doc.String()
	if strings.Contains(s, "classified") {
		t.Errorf("Doc.String leaked: %q", s)
	}
	if !strings.Contains(s, "secret") {
		t.Errorf("Doc.String missing keys: %q", s)
	}
}
