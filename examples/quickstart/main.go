// Command quickstart is the smallest complete SafeWeb program: an
// event-processing pipeline with labels, a labelled document store, and a
// web frontend whose release check blocks an uncleared user.
//
// Run it with:
//
//	go run ./examples/quickstart
//
// It prints each step and exits. No network ports except a loopback HTTP
// listener are used.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"

	"safeweb"
	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/webfront"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Policy: a processing unit "greeter" may receive ward-1 data;
	//    user accounts get clearance below.
	policy := safeweb.NewPolicy()
	policy.Grant("greeter", safeweb.Clearance, safeweb.MustParsePattern("label:conf:clinic.example/ward/1"))

	// 2. Assemble the middleware: broker + engine + app DB + DMZ replica
	//    + frontend.
	mw, err := safeweb.NewMiddleware(safeweb.MiddlewareConfig{Policy: policy})
	if err != nil {
		return err
	}
	defer mw.Stop()

	// 3. One unit: it greets every admission event and stores the result
	//    with the event's labels.
	ward1 := safeweb.ConfLabel("clinic.example/ward/1")
	err = mw.AddUnit(&engine.FuncUnit{UnitName: "greeter", InitFunc: func(ctx *engine.InitContext) error {
		return ctx.Subscribe("/admissions", "", func(ctx *engine.Context, ev *event.Event) error {
			greeting := fmt.Sprintf("welcome, %s", ev.Attr("patient"))
			_, err := mw.AppDB.Put("greeting-"+ev.Attr("patient"),
				map[string]string{"text": greeting},
				ctx.Labels().Confidentiality(), "")
			return err
		})
	}})
	if err != nil {
		return err
	}

	// 4. Two users: the ward nurse is cleared for ward-1 data, the
	//    visitor is not.
	nurse, err := mw.WebDB.CreateUser("nurse", "pw")
	if err != nil {
		return err
	}
	mw.WebDB.GrantLabel(nurse.ID, safeweb.Clearance, safeweb.ExactPattern(ward1))
	if _, err := mw.WebDB.CreateUser("visitor", "pw"); err != nil {
		return err
	}

	// 5. One route: serve the greeting document. The handler performs no
	//    access check at all — SafeWeb's release check is the safety net.
	mw.Frontend.Get("/greeting/:patient", func(c *webfront.Ctx) error {
		doc, err := mw.DMZDB.Get("greeting-" + c.Param("patient"))
		if err != nil {
			return webfront.ErrNotFound("greeting")
		}
		wrapped, err := mw.Frontend.WrapDoc(doc)
		if err != nil {
			return err
		}
		c.Write(wrapped.GetString("text"))
		return nil
	})

	// 6. Publish one labelled admission and sync the pipeline.
	mw.Start()
	admission := safeweb.NewEvent("/admissions", map[string]string{"patient": "smith"}, ward1)
	if err := mw.Broker.Publish("reception", admission); err != nil {
		return err
	}
	mw.Sync()
	fmt.Println("pipeline: admission processed, greeting stored with label", ward1)

	// 7. Fetch as both users.
	addr, err := mw.ServeHTTP("127.0.0.1:0")
	if err != nil {
		return err
	}
	for _, user := range []string{"nurse", "visitor"} {
		status, body, err := fetch("http://"+addr+"/greeting/smith", user, "pw")
		if err != nil {
			return err
		}
		fmt.Printf("%-8s -> HTTP %d %q\n", user, status, body)
	}
	fmt.Println("the visitor's request was blocked by the data-flow policy — no code in the handler did that")
	return nil
}

func fetch(url, user, pass string) (int, string, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, "", err
	}
	req.SetBasicAuth(user, pass)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(body), nil
}
