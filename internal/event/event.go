// Package event defines SafeWeb events: the unit of data exchanged between
// processing components in the backend (paper §4.1).
//
// An event consists of a set of key-value attribute pairs and an optional
// data payload; keys, values and the body are untyped strings. Every event
// carries a set of security labels. Deriving an event from others composes
// labels per the sticky/fragile rules of package label.
package event

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"safeweb/internal/label"
)

// ErrReservedAttribute is returned when application code attempts to set an
// attribute in the reserved "x-safeweb-" namespace used for label transport.
var ErrReservedAttribute = errors.New("event: attribute name is reserved")

// ReservedPrefix is the attribute namespace reserved for SafeWeb metadata;
// labels travel in these attributes on the wire, so application code may
// not set them directly.
const ReservedPrefix = "x-safeweb-"

// Event is a labelled message. Events are created by units and by the
// producer components that import data into the system. An Event and its
// attribute map must not be mutated after publishing; units receive
// defensive copies from the engine.
type Event struct {
	// Topic is the destination the event is published to,
	// e.g. "/patient_report".
	Topic string
	// Attrs holds the key-value attribute pairs. Keys and values are
	// untyped strings. A nil map means no attributes; Set initialises it
	// on first write.
	Attrs map[string]string
	// Body is the optional payload. The broker shares the body between
	// the publisher and all subscribers (payloads are treated as
	// immutable once published), so it must not be modified in place
	// after publishing or on receipt.
	Body []byte
	// Labels is the event's security label set (confidentiality and
	// integrity labels together).
	Labels label.Set

	// labelHeader memoises Labels.String(), the sorted wire form used by
	// MarshalHeaders. The broker computes it once per publish (before
	// fan-out, on the publishing goroutine) so that delivering one event
	// to many networked subscribers does not re-sort the label set per
	// frame. Empty means "not cached"; an event's labels never change
	// after publishing, so the memo cannot go stale.
	labelHeader string

	// frozen is set by Freeze when the broker publishes the event. A
	// frozen event may be shared between the publisher and several
	// subscribers, so Set refuses to mutate it.
	frozen bool
}

// ErrFrozen is returned by Set on an event that has been published.
var ErrFrozen = errors.New("event: frozen after publish")

// New creates an event on the given topic with a copy of the given
// attributes and labels. An empty attribute map is stored as nil, so
// attribute-free events cost no map allocation anywhere downstream.
func New(topic string, attrs map[string]string, labels ...label.Label) *Event {
	e := &Event{
		Topic:  topic,
		Labels: label.NewSet(labels...),
	}
	if len(attrs) > 0 {
		e.Attrs = make(map[string]string, len(attrs))
		for k, v := range attrs {
			e.Attrs[k] = v
		}
	}
	return e
}

// Validate checks structural invariants: a non-empty topic and no reserved
// attribute names.
func (e *Event) Validate() error {
	if e.Topic == "" {
		return errors.New("event: empty topic")
	}
	for k := range e.Attrs {
		if strings.HasPrefix(k, ReservedPrefix) {
			return fmt.Errorf("%w: %q", ErrReservedAttribute, k)
		}
	}
	return nil
}

// Get returns the attribute value for key and whether it was present.
func (e *Event) Get(key string) (string, bool) {
	v, ok := e.Attrs[key]
	return v, ok
}

// Attr returns the attribute value for key, or "" if absent.
func (e *Event) Attr(key string) string { return e.Attrs[key] }

// Set sets an attribute, initialising the map if needed. It returns an
// error for reserved attribute names, and ErrFrozen for events that have
// been published: a published event may be shared between the publisher
// and all its subscribers, so in-place mutation would leak across
// isolation boundaries. To modify a received event, Clone it (or build a
// new one with Derive).
func (e *Event) Set(key, value string) error {
	if e.frozen {
		return fmt.Errorf("%w: %q", ErrFrozen, key)
	}
	if strings.HasPrefix(key, ReservedPrefix) {
		return fmt.Errorf("%w: %q", ErrReservedAttribute, key)
	}
	if e.Attrs == nil {
		e.Attrs = make(map[string]string)
	}
	e.Attrs[key] = value
	return nil
}

// Clone returns a deep copy of the event. Label sets are immutable by
// convention and therefore shared. The clone is independent: it is not
// frozen and does not inherit the label-header memo, so callers may
// re-label it (as the federation bridge does) without a stale wire
// header surviving.
func (e *Event) Clone() *Event {
	out := &Event{
		Topic:  e.Topic,
		Labels: e.Labels,
	}
	if e.Attrs != nil {
		out.Attrs = make(map[string]string, len(e.Attrs))
		for k, v := range e.Attrs {
			out.Attrs[k] = v
		}
	}
	if e.Body != nil {
		out.Body = append([]byte(nil), e.Body...)
	}
	return out
}

// Delivery returns the event to hand to one subscriber. Published events
// are frozen — the publisher must not touch them after Publish — so
// everything immutable is shared: topic, body, labels and the cached
// label header. Only the attribute map is copied, because handlers are
// allowed to annotate their own view of an event in place and a buggy
// unit must not be able to affect its peers. Attribute-free events are
// shared outright, making delivery allocation-free; the shared event
// stays frozen, so Set on it fails instead of leaking across subscribers,
// while per-subscriber copies are mutable.
func (e *Event) Delivery() *Event {
	if len(e.Attrs) == 0 {
		return e
	}
	attrs := make(map[string]string, len(e.Attrs))
	for k, v := range e.Attrs {
		attrs[k] = v
	}
	return &Event{
		Topic:       e.Topic,
		Attrs:       attrs,
		Body:        e.Body,
		Labels:      e.Labels,
		labelHeader: e.labelHeader,
	}
}

// Freeze marks the event as published: it memoises the sorted wire form
// of the label set for MarshalHeaders and blocks further Set calls, since
// the event may now be shared between the publisher and any number of
// subscribers. The broker calls it once per publish before fan-out, on
// the publishing goroutine; it must not be called concurrently with
// readers of the same event.
func (e *Event) Freeze() {
	e.frozen = true
	if e.labelHeader == "" && !e.Labels.IsEmpty() {
		e.labelHeader = e.Labels.String()
	}
}

// Derive creates a new event on the given topic whose labels are composed
// from the labels of the source events: confidentiality labels are sticky
// (union) and integrity labels are fragile (intersection). This is the only
// supported way for unit code to construct output events from inputs, so
// the composition rule cannot be forgotten.
func Derive(topic string, attrs map[string]string, body []byte, sources ...*Event) *Event {
	sets := make([]label.Set, len(sources))
	for i, src := range sources {
		sets[i] = src.Labels
	}
	e := New(topic, attrs)
	e.Body = append([]byte(nil), body...)
	e.Labels = label.Derive(sets...)
	return e
}

// SortedKeys returns the attribute keys in lexicographic order, for
// deterministic encoding and display.
func (e *Event) SortedKeys() []string {
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders a compact human-readable form for logs and debugging.
// Attribute values are not truncated; events in SafeWeb deployments are
// small records, not blobs.
func (e *Event) String() string {
	var b strings.Builder
	b.WriteString(e.Topic)
	b.WriteByte('{')
	for i, k := range e.SortedKeys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", k, e.Attrs[k])
	}
	b.WriteByte('}')
	if !e.Labels.IsEmpty() {
		fmt.Fprintf(&b, "[%s]", e.Labels)
	}
	if len(e.Body) > 0 {
		fmt.Fprintf(&b, "+%dB", len(e.Body))
	}
	return b.String()
}
