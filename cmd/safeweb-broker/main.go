// Command safeweb-broker runs a standalone IFC-aware STOMP event broker —
// the "secure event bus for event processing units" of the paper's Fig. 4
// deployment (component 1).
//
// Usage:
//
//	safeweb-broker -addr :61613 -policy policy.json [-cert c.pem -key k.pem]
//
// The policy file (see internal/label.LoadPolicy for the schema) assigns
// each login's clearance/declassification/endorsement privileges; the
// broker filters delivered events so that clients only receive events
// whose confidentiality labels their clearance covers, and rejects
// integrity-labelled publishes from logins without the endorsement
// privilege.
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/label"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:61613", "listen address")
	policyPath := flag.String("policy", "", "policy file (JSON); empty grants no privileges")
	certFile := flag.String("cert", "", "TLS certificate (enables TLS with -key)")
	keyFile := flag.String("key", "", "TLS private key")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats logging period (0 disables)")
	flag.Parse()

	if err := run(*addr, *policyPath, *certFile, *keyFile, *statsEvery); err != nil {
		fmt.Fprintln(os.Stderr, "safeweb-broker:", err)
		os.Exit(1)
	}
}

func run(addr, policyPath, certFile, keyFile string, statsEvery time.Duration) error {
	policy := label.NewPolicy()
	if policyPath != "" {
		loaded, err := label.LoadPolicy(policyPath)
		if err != nil {
			return err
		}
		policy = loaded
		log.Printf("loaded policy with %d principals", len(policy.Principals()))
	}

	var tlsCfg *tls.Config
	if certFile != "" || keyFile != "" {
		cert, err := tls.LoadX509KeyPair(certFile, keyFile)
		if err != nil {
			return fmt.Errorf("load TLS keypair: %w", err)
		}
		tlsCfg = &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}
	}

	b := broker.New(policy)
	srv, err := broker.NewServer(addr, b, broker.ServerConfig{TLS: tlsCfg, Logf: log.Printf})
	if err != nil {
		return err
	}
	log.Printf("broker listening on %s (TLS: %v)", srv.Addr(), tlsCfg != nil)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)

	if statsEvery > 0 {
		ticker := time.NewTicker(statsEvery)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				log.Printf("stats: %+v", b.Stats())
			}
		}()
	}

	<-stop
	log.Printf("shutting down; final stats: %+v", b.Stats())
	if err := srv.Close(); err != nil {
		return err
	}
	b.Close()
	return nil
}
