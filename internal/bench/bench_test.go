package bench

import (
	"testing"

	"safeweb/internal/webfront"
)

// tinyWorkload keeps unit tests fast; the experiment sizes are scaled in
// cmd/safeweb-bench.
func tinyWorkload() Workload {
	return Workload{Patients: 30, Requests: 20, AuthWork: 10, Seed: 3}
}

func TestPageGenerationComparison(t *testing.T) {
	cmp, err := PageGeneration(tinyWorkload())
	if err != nil {
		t.Fatalf("PageGeneration: %v", err)
	}
	if cmp.Baseline.Mean <= 0 || cmp.SafeWeb.Mean <= 0 {
		t.Errorf("non-positive means: %+v", cmp)
	}
	if cmp.Baseline.Operations != 20 || cmp.SafeWeb.Operations != 20 {
		t.Errorf("operation counts: %+v", cmp)
	}
	// The overhead direction should match the paper: tracking costs
	// something. Tiny workloads are noisy, so only sanity-check the
	// magnitude.
	if pct := cmp.OverheadPercent(); pct < -80 || pct > 500 {
		t.Errorf("implausible overhead %.1f%%", pct)
	}
}

func TestEventLatencyComparison(t *testing.T) {
	cmp, err := EventLatency(tinyWorkload(), false)
	if err != nil {
		t.Fatalf("EventLatency: %v", err)
	}
	if cmp.Baseline.Mean <= 0 || cmp.SafeWeb.Mean <= 0 {
		t.Errorf("non-positive means: %+v", cmp)
	}
}

func TestEventLatencyNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("network pipeline in -short mode")
	}
	cmp, err := EventLatency(Workload{Patients: 30, Requests: 10, AuthWork: 10, Seed: 3}, true)
	if err != nil {
		t.Fatalf("EventLatency(network): %v", err)
	}
	if cmp.SafeWeb.Mean <= 0 {
		t.Errorf("network mean: %+v", cmp)
	}
}

func TestThroughputComparison(t *testing.T) {
	cmp, err := Throughput(2000, false)
	if err != nil {
		t.Fatalf("Throughput: %v", err)
	}
	if cmp.Baseline.EventsPerSecond <= 0 || cmp.SafeWeb.EventsPerSecond <= 0 {
		t.Errorf("non-positive throughput: %+v", cmp)
	}
	if cmp.Baseline.Events != 2000 {
		t.Errorf("events = %d", cmp.Baseline.Events)
	}
	_ = cmp.ChangePercent() // must not panic on tiny runs
}

func TestFrontendBreakdownShape(t *testing.T) {
	fb, err := MeasureFrontendBreakdown(tinyWorkload())
	if err != nil {
		t.Fatalf("MeasureFrontendBreakdown: %v", err)
	}
	if fb.Auth <= 0 || fb.Template <= 0 || fb.Total <= 0 {
		t.Errorf("breakdown has non-positive phases: %+v", fb)
	}
	if fb.LabelPropagation < 0 || fb.Other < 0 || fb.PrivFetch < 0 {
		t.Errorf("negative phases: %+v", fb)
	}
	sum := fb.Auth + fb.PrivFetch + fb.Template + fb.LabelPropagation + fb.Other
	// The phases are measured on separate runs, so allow slack, but the
	// sum must be the same order of magnitude as the total.
	if sum > 4*fb.Total || fb.Total > 4*sum {
		t.Errorf("breakdown does not decompose total: sum=%v total=%v", sum, fb.Total)
	}
}

func TestBackendBreakdownShape(t *testing.T) {
	bb, err := MeasureBackendBreakdown(tinyWorkload())
	if err != nil {
		t.Fatalf("MeasureBackendBreakdown: %v", err)
	}
	if bb.Processing <= 0 || bb.Serialisation <= 0 || bb.LabelManagement <= 0 {
		t.Errorf("non-positive phases: %+v", bb)
	}
	// Fig. 5 ordering: processing dominates serialisation, which
	// dominates label management. At this test's tiny workload the two
	// smaller phases sit within a few microseconds of each other, so the
	// ordering assertions carry a 2x noise allowance; the paper-sized
	// runs (cmd/safeweb-bench) show the clean ordering.
	if bb.Serialisation > 2*bb.Processing {
		t.Errorf("serialisation (%v) far exceeds processing (%v)", bb.Serialisation, bb.Processing)
	}
	if bb.LabelManagement > 2*bb.Serialisation {
		t.Errorf("label management (%v) far exceeds serialisation (%v)", bb.LabelManagement, bb.Serialisation)
	}
}

func TestPhaseAccumulator(t *testing.T) {
	acc := &PhaseAccumulator{}
	if _, _, _, _, n := acc.Means(); n != 0 {
		t.Error("fresh accumulator non-empty")
	}
	acc.Observe(webfront.PhaseTimes{Auth: 10, PrivFetch: 2, Handler: 30, LabelCheck: 1, Status: 200})
	acc.Observe(webfront.PhaseTimes{Auth: 20, PrivFetch: 4, Handler: 50, LabelCheck: 3, Status: 200})
	auth, priv, handler, check, n := acc.Means()
	if n != 2 || auth != 15 || priv != 3 || handler != 40 || check != 2 {
		t.Errorf("means = %v %v %v %v (n=%d)", auth, priv, handler, check, n)
	}
	acc.Reset()
	if _, _, _, _, n := acc.Means(); n != 0 {
		t.Error("reset did not clear")
	}
}

func TestCountLOC(t *testing.T) {
	// Count this repository: the bench package itself must appear with
	// non-trivial source and test lines.
	pkgs, err := CountLOC("../..")
	if err != nil {
		t.Fatalf("CountLOC: %v", err)
	}
	var found *PackageLOC
	for i := range pkgs {
		if pkgs[i].Package == "internal/bench" {
			found = &pkgs[i]
		}
	}
	if found == nil {
		t.Fatal("internal/bench not found")
	}
	if found.Lines < 100 || found.TestLines < 50 {
		t.Errorf("implausible counts: %+v", found)
	}
	if found.Trusted {
		t.Error("bench should not be trusted")
	}

	sum, err := Summarise("../..")
	if err != nil {
		t.Fatalf("Summarise: %v", err)
	}
	if sum.TrustedLines < 1000 {
		t.Errorf("trusted lines = %d, implausibly small", sum.TrustedLines)
	}
	if sum.UntrustedLines <= 0 || sum.TestLines <= 0 {
		t.Errorf("summary: %+v", sum)
	}
}

func TestStompRoundTripForBench(t *testing.T) {
	if err := StompRoundTripForBench(10); err != nil {
		t.Fatalf("StompRoundTripForBench: %v", err)
	}
}
