package label

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestParsePattern(t *testing.T) {
	tests := []struct {
		pattern string
		match   []string
		noMatch []string
	}{
		{
			pattern: "label:conf:ecric.org.uk/patient/*",
			match:   []string{"label:conf:ecric.org.uk/patient/1", "label:conf:ecric.org.uk/patient/33812769"},
			noMatch: []string{"label:conf:ecric.org.uk/mdt/1", "label:int:ecric.org.uk/patient/1"},
		},
		{
			pattern: "label:conf:ecric.org.uk/mdt/7",
			match:   []string{"label:conf:ecric.org.uk/mdt/7"},
			noMatch: []string{"label:conf:ecric.org.uk/mdt/70", "label:conf:ecric.org.uk/mdt"},
		},
		{
			pattern: "label:int:*",
			match:   []string{"label:int:anything/at/all"},
			noMatch: []string{"label:conf:anything/at/all"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.pattern, func(t *testing.T) {
			pat, err := ParsePattern(tt.pattern)
			if err != nil {
				t.Fatalf("ParsePattern(%q): %v", tt.pattern, err)
			}
			if pat.String() != tt.pattern {
				t.Errorf("String = %q, want %q", pat.String(), tt.pattern)
			}
			for _, uri := range tt.match {
				if !pat.Matches(MustParse(uri)) {
					t.Errorf("pattern %q should match %q", tt.pattern, uri)
				}
			}
			for _, uri := range tt.noMatch {
				if pat.Matches(MustParse(uri)) {
					t.Errorf("pattern %q should not match %q", tt.pattern, uri)
				}
			}
		})
	}

	if _, err := ParsePattern("garbage*"); err == nil {
		t.Error("ParsePattern(garbage) succeeded")
	}
}

func TestPrivilegesGrantAndCheck(t *testing.T) {
	mdt7 := Conf("ecric.org.uk/mdt/7")
	mdt8 := Conf("ecric.org.uk/mdt/8")

	pv := NewPrivileges().
		GrantLabel(Clearance, mdt7).
		GrantLabel(Declassify, mdt7)

	if !pv.Has(Clearance, mdt7) || !pv.Has(Declassify, mdt7) {
		t.Error("granted privileges not held")
	}
	if pv.Has(Clearance, mdt8) || pv.Has(Endorse, mdt7) {
		t.Error("ungranted privileges held")
	}
	if !pv.HasAll(Clearance, NewSet(mdt7)) {
		t.Error("HasAll over granted set failed")
	}
	if pv.HasAll(Clearance, NewSet(mdt7, mdt8)) {
		t.Error("HasAll over partially granted set passed")
	}

	cleared := pv.Cleared(NewSet(mdt7, mdt8))
	if cleared.Len() != 1 || !cleared.Contains(mdt7) {
		t.Errorf("Cleared = %v", cleared)
	}
}

func TestPrivilegesNilSafe(t *testing.T) {
	var pv *Privileges
	if pv.Has(Clearance, Conf("x")) {
		t.Error("nil privileges granted something")
	}
	if pv.Cleared(NewSet(Conf("x"))).Len() != 0 {
		t.Error("nil privileges cleared something")
	}
	clone := pv.Clone()
	if clone == nil || clone.Has(Clearance, Conf("x")) {
		t.Error("nil clone wrong")
	}
}

func TestCheckFlow(t *testing.T) {
	patient := Conf("patient/1")
	mdtInt := Int("mdt")

	pv := NewPrivileges().GrantLabel(Clearance, patient)

	if err := pv.CheckFlow(NewSet(patient), nil); err != nil {
		t.Errorf("cleared flow rejected: %v", err)
	}
	err := pv.CheckFlow(NewSet(patient, Conf("patient/2")), nil)
	if err == nil {
		t.Fatal("uncleared flow accepted")
	}
	var fe *FlowError
	if !errors.As(err, &fe) {
		t.Fatalf("error type = %T, want *FlowError", err)
	}
	if fe.Op != "receive" {
		t.Errorf("FlowError.Op = %q", fe.Op)
	}
	if !strings.Contains(fe.Error(), "patient/2") {
		t.Errorf("FlowError message missing label: %q", fe.Error())
	}

	// Integrity requirement: data lacks the label and principal lacks
	// ClearLow.
	if err := pv.CheckFlow(NewSet(patient), NewSet(mdtInt)); err == nil {
		t.Error("missing integrity label accepted without clearlow")
	}
	// Data carries the required label: fine.
	if err := pv.CheckFlow(NewSet(patient, mdtInt), NewSet(mdtInt)); err != nil {
		t.Errorf("carried integrity label rejected: %v", err)
	}
	// Principal holds ClearLow: fine.
	pv.GrantLabel(ClearLow, mdtInt)
	if err := pv.CheckFlow(NewSet(patient), NewSet(mdtInt)); err != nil {
		t.Errorf("clearlow flow rejected: %v", err)
	}
}

func TestPrivilegesMergeAndClone(t *testing.T) {
	a := NewPrivileges().GrantLabel(Clearance, Conf("x"))
	b := NewPrivileges().GrantLabel(Declassify, Conf("y"))
	a.Merge(b)
	if !a.Has(Clearance, Conf("x")) || !a.Has(Declassify, Conf("y")) {
		t.Error("merge lost grants")
	}

	c := a.Clone()
	c.GrantLabel(Endorse, Int("z"))
	if a.Has(Endorse, Int("z")) {
		t.Error("clone shares state with original")
	}
	a.Merge(nil) // must not panic
}

func TestParsePrivilege(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want Privilege
	}{
		{"clearance", Clearance},
		{"Declassify", Declassify},
		{"declassification", Declassify},
		{"endorse", Endorse},
		{"endorsement", Endorse},
		{"clearlow", ClearLow},
	} {
		got, err := ParsePrivilege(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParsePrivilege(%q) = %v, %v; want %v", tt.in, got, err, tt.want)
		}
	}
	if _, err := ParsePrivilege("root"); err == nil {
		t.Error("ParsePrivilege(root) succeeded")
	}
}

func TestPolicyLoadAndQuery(t *testing.T) {
	const doc = `{
	  "principals": {
	    "data-producer": {
	      "privileged": true,
	      "clearance": ["label:conf:ecric.org.uk/*"],
	      "declassify": ["label:conf:ecric.org.uk/*"],
	      "endorse": ["label:int:ecric.org.uk/mdt"]
	    },
	    "aggregator": {
	      "clearance": ["label:conf:ecric.org.uk/mdt/*"]
	    }
	  }
	}`
	p, err := ReadPolicy(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("ReadPolicy: %v", err)
	}
	if !p.IsPrivileged("data-producer") {
		t.Error("data-producer not privileged")
	}
	if p.IsPrivileged("aggregator") || p.IsPrivileged("unknown") {
		t.Error("unexpected privileged principals")
	}
	agg := p.PrivilegesOf("aggregator")
	if !agg.Has(Clearance, Conf("ecric.org.uk/mdt/7")) {
		t.Error("aggregator missing clearance")
	}
	if agg.Has(Declassify, Conf("ecric.org.uk/mdt/7")) {
		t.Error("aggregator has declassify it was never granted")
	}
	if got := p.Principals(); len(got) != 2 || got[0] != "aggregator" {
		t.Errorf("Principals = %v", got)
	}
	// Unknown principals yield empty (non-nil) privileges.
	if p.PrivilegesOf("nobody") == nil {
		t.Error("PrivilegesOf(unknown) returned nil")
	}
}

func TestPolicyRoundTrip(t *testing.T) {
	p := NewPolicy()
	privs := NewPrivileges().
		Grant(Clearance, MustParsePattern("label:conf:ecric.org.uk/mdt/*")).
		GrantLabel(Declassify, Conf("ecric.org.uk/mdt/7"))
	p.SetPrincipal("unit-a", privs, true)
	p.Grant("unit-b", Endorse, MustParsePattern("label:int:ecric.org.uk/*"))

	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	back, err := ReadPolicy(&buf)
	if err != nil {
		t.Fatalf("ReadPolicy(round trip): %v", err)
	}
	if !back.IsPrivileged("unit-a") {
		t.Error("privileged flag lost")
	}
	if !back.PrivilegesOf("unit-a").Has(Clearance, Conf("ecric.org.uk/mdt/9")) {
		t.Error("wildcard clearance lost")
	}
	if !back.PrivilegesOf("unit-b").Has(Endorse, Int("ecric.org.uk/mdt")) {
		t.Error("endorse grant lost")
	}
}

func TestPolicyBadInput(t *testing.T) {
	bad := []string{
		`{"principals": {"u": {"clearance": ["nonsense"]}}}`,
		`{"unknown_field": 1}`,
		`not json`,
	}
	for _, doc := range bad {
		if _, err := ReadPolicy(strings.NewReader(doc)); err == nil {
			t.Errorf("ReadPolicy(%q) succeeded", doc)
		}
	}
}

func TestPolicyRemovePrincipal(t *testing.T) {
	p := NewPolicy()
	p.Grant("u", Clearance, MustParsePattern("label:conf:*"))
	p.RemovePrincipal("u")
	if p.PrivilegesOf("u").Has(Clearance, Conf("x")) {
		t.Error("removed principal retains privileges")
	}
}
