// Package taint implements SafeWeb's variable-level taint tracking for the
// web frontend (paper §4.4, Fig. 3).
//
// In the Ruby implementation, SafeWeb redefines String and Numeric methods
// so that labels stored inside each instance propagate transparently
// through application code. Go is statically typed, so the equivalent is a
// family of labelled value types — String, Number and Doc — whose
// operations (concatenation, formatting, regular expressions, arithmetic,
// JSON encoding) propagate labels with the same semantics: the label set
// of any derived value is the composition of its sources' labels
// (confidentiality sticky, integrity fragile).
//
// Application code in the frontend works with these types end-to-end; the
// webfront package checks the accumulated response labels against the
// authenticated user's privileges before release, which is where the
// paper's end-to-end guarantee is enforced.
package taint

import (
	"fmt"
	"strconv"
	"strings"

	"safeweb/internal/label"
)

// String is a labelled string. The zero value is the empty, unlabelled
// string. String values are immutable; operations return new values.
type String struct {
	s      string
	labels label.Set
}

// NewString creates a labelled string.
func NewString(s string, labels ...label.Label) String {
	return String{s: s, labels: label.NewSet(labels...)}
}

// WrapString attaches an existing label set to a string.
func WrapString(s string, labels label.Set) String {
	return String{s: s, labels: labels}
}

// Raw returns the underlying string without any label check. It is the
// taint-tracking escape hatch: trusted code uses it at checked boundaries
// (the webfront response writer) and in key positions (map keys, database
// ids) where labels are carried by the surrounding structure.
func (s String) Raw() string { return s.s }

// Labels returns the string's label set.
func (s String) Labels() label.Set { return s.labels }

// Len returns the byte length.
func (s String) Len() int { return len(s.s) }

// IsEmpty reports whether the string is empty.
func (s String) IsEmpty() bool { return s.s == "" }

// WithLabels returns a copy with extra labels attached. Raising
// confidentiality is always permitted, so no privilege is needed; use
// package webfront's declassification helpers to remove labels.
func (s String) WithLabels(labels ...label.Label) String {
	return String{s: s.s, labels: s.labels.With(labels...)}
}

// derive composes the labels of sources that contributed to a value.
func derive(sets ...label.Set) label.Set { return label.Derive(sets...) }

// Concat returns s + others with composed labels, the paper's canonical
// example: "when two strings are concatenated, the resulting string
// receives both operands' labels."
func (s String) Concat(others ...String) String {
	var b strings.Builder
	b.WriteString(s.s)
	sets := make([]label.Set, 0, len(others)+1)
	sets = append(sets, s.labels)
	for _, o := range others {
		b.WriteString(o.s)
		sets = append(sets, o.labels)
	}
	return String{s: b.String(), labels: derive(sets...)}
}

// Append concatenates a plain (unlabelled) string fragment. The fragment
// carries no integrity labels, so the result loses any integrity labels,
// exactly as combining with untrusted data should.
func (s String) Append(raw string) String {
	return s.Concat(String{s: raw})
}

// Equal compares string contents (labels are not part of equality; they
// describe provenance, not value).
func (s String) Equal(other String) bool { return s.s == other.s }

// EqualFold reports ASCII case-insensitive equality — provided because a
// case-insensitive credential comparison is precisely the §5.2 "errors in
// access checks" bug class, and application code that wants it should at
// least get labels right.
func (s String) EqualFold(other String) bool { return strings.EqualFold(s.s, other.s) }

// ToUpper, ToLower, TrimSpace return transformed copies with the same
// labels: transformation derives entirely from the receiver.
func (s String) ToUpper() String   { return String{s: strings.ToUpper(s.s), labels: s.labels} }
func (s String) ToLower() String   { return String{s: strings.ToLower(s.s), labels: s.labels} }
func (s String) TrimSpace() String { return String{s: strings.TrimSpace(s.s), labels: s.labels} }

// Contains reports whether substr occurs in s.
func (s String) Contains(substr string) bool { return strings.Contains(s.s, substr) }

// HasPrefix reports whether s starts with prefix.
func (s String) HasPrefix(prefix string) bool { return strings.HasPrefix(s.s, prefix) }

// Split divides s around sep; every part inherits the full label set, as
// any substring of labelled data is as confidential as the whole.
func (s String) Split(sep string) []String {
	parts := strings.Split(s.s, sep)
	out := make([]String, len(parts))
	for i, p := range parts {
		out[i] = String{s: p, labels: s.labels}
	}
	return out
}

// Replace returns s with occurrences of old replaced by new; the
// replacement's labels join the receiver's.
func (s String) Replace(old string, new String, n int) String {
	return String{
		s:      strings.Replace(s.s, old, new.s, n),
		labels: derive(s.labels, new.labels),
	}
}

// Join concatenates parts with an unlabelled separator, composing all part
// labels.
func Join(parts []String, sep string) String {
	if len(parts) == 0 {
		return String{}
	}
	raw := make([]string, len(parts))
	sets := make([]label.Set, len(parts))
	for i, p := range parts {
		raw[i] = p.s
		sets[i] = p.labels
	}
	return String{s: strings.Join(raw, sep), labels: derive(sets...)}
}

// Sprintf formats like fmt.Sprintf while composing the labels of all
// labelled arguments (String, Number, Doc, Value). Unlabelled arguments
// contribute empty label sets, which correctly drops integrity labels from
// the result.
func Sprintf(format string, args ...any) String {
	raw := make([]any, len(args))
	sets := make([]label.Set, 0, len(args)+1)
	sets = append(sets, nil) // the format string itself, unlabelled
	for i, arg := range args {
		switch v := arg.(type) {
		case String:
			raw[i] = v.s
			sets = append(sets, v.labels)
		case Number:
			raw[i] = v.Float()
			sets = append(sets, v.labels)
		case Value:
			raw[i] = v.v
			sets = append(sets, v.labels)
		default:
			raw[i] = arg
			sets = append(sets, nil)
		}
	}
	return String{s: fmt.Sprintf(format, raw...), labels: derive(sets...)}
}

// String implements fmt.Stringer. It deliberately exposes the labels, not
// the raw contents, so that accidentally logging a labelled value (the
// paper's §3.1 logging-bug example) does not leak data into log files.
func (s String) String() string {
	if s.labels.IsEmpty() {
		return s.s
	}
	return fmt.Sprintf("taint.String(%d bytes)[%s]", len(s.s), s.labels)
}

// Number is a labelled number. SafeWeb frontends use it for aggregates and
// metrics (completeness percentages, survival statistics).
type Number struct {
	f      float64
	labels label.Set
}

// NewNumber creates a labelled number.
func NewNumber(f float64, labels ...label.Label) Number {
	return Number{f: f, labels: label.NewSet(labels...)}
}

// WrapNumber attaches an existing label set to a number.
func WrapNumber(f float64, labels label.Set) Number {
	return Number{f: f, labels: labels}
}

// Float returns the numeric value without label checks (see String.Raw).
func (n Number) Float() float64 { return n.f }

// Int returns the truncated integer value.
func (n Number) Int() int { return int(n.f) }

// Labels returns the number's label set.
func (n Number) Labels() label.Set { return n.labels }

// Add, Sub, Mul, Div return arithmetic results with composed labels.
func (n Number) Add(o Number) Number {
	return Number{f: n.f + o.f, labels: derive(n.labels, o.labels)}
}

// Sub returns n - o.
func (n Number) Sub(o Number) Number {
	return Number{f: n.f - o.f, labels: derive(n.labels, o.labels)}
}

// Mul returns n * o.
func (n Number) Mul(o Number) Number {
	return Number{f: n.f * o.f, labels: derive(n.labels, o.labels)}
}

// Div returns n / o; division by zero yields 0 with composed labels (the
// caller's arithmetic bug must not crash the request path).
func (n Number) Div(o Number) Number {
	var q float64
	if o.f != 0 {
		q = n.f / o.f
	}
	return Number{f: q, labels: derive(n.labels, o.labels)}
}

// Format renders the number as a labelled string with the given precision
// (-1 for minimal digits).
func (n Number) Format(prec int) String {
	return String{s: strconv.FormatFloat(n.f, 'f', prec, 64), labels: n.labels}
}

// ParseNumber converts a labelled string to a labelled number.
func ParseNumber(s String) (Number, error) {
	f, err := strconv.ParseFloat(strings.TrimSpace(s.s), 64)
	if err != nil {
		return Number{}, fmt.Errorf("taint: parse number: %w", err)
	}
	return Number{f: f, labels: s.labels}, nil
}

// String implements fmt.Stringer, hiding the value when labelled (see
// String.String).
func (n Number) String() string {
	if n.labels.IsEmpty() {
		return strconv.FormatFloat(n.f, 'g', -1, 64)
	}
	return fmt.Sprintf("taint.Number[%s]", n.labels)
}

// Value is a labelled arbitrary value, used for structured data whose
// parts share one label set.
type Value struct {
	v      any
	labels label.Set
}

// NewValue wraps v with labels.
func NewValue(v any, labels label.Set) Value { return Value{v: v, labels: labels} }

// Any returns the wrapped value without label checks.
func (v Value) Any() any { return v.v }

// Labels returns the value's label set.
func (v Value) Labels() label.Set { return v.labels }
