package event

import (
	"errors"
	"testing"

	"safeweb/internal/label"
)

// TestFreezeBlocksSet pins the shared-delivery safety contract: once an
// event is frozen (published), Set must refuse to mutate it, while a
// Clone or a Delivery copy with its own attribute map stays mutable.
func TestFreezeBlocksSet(t *testing.T) {
	e := New("/t", nil)
	e.Freeze()
	//lint:ignore frozenmutate probing the freeze contract: Set on a frozen event must fail with ErrFrozen
	if err := e.Set("k", "v"); !errors.Is(err, ErrFrozen) {
		t.Errorf("Set on frozen event = %v, want ErrFrozen", err)
	}
	if e.Attrs != nil {
		t.Error("failed Set still touched the attribute map")
	}

	c := e.Clone()
	if err := c.Set("k", "v"); err != nil || c.Attr("k") != "v" {
		t.Errorf("Set on clone of frozen event failed: %v", err)
	}

	withAttrs := New("/t", map[string]string{"a": "1"})
	withAttrs.Freeze()
	d := withAttrs.Delivery()
	if err := d.Set("k", "v"); err != nil {
		t.Errorf("Set on per-subscriber delivery copy failed: %v", err)
	}
	if _, ok := withAttrs.Get("k"); ok {
		t.Error("delivery-copy Set leaked into the published event")
	}
}

// TestCloneDropsLabelHeaderMemo guards the federation bridge pattern:
// Clone → replace Labels → marshal must emit the NEW label set, not a
// stale memo from the original's publish.
func TestCloneDropsLabelHeaderMemo(t *testing.T) {
	src := New("/t", nil, label.Conf("east.nhs.uk/agg"))
	src.Freeze() // memoises the label header, as Broker.Publish does

	out := src.Clone()
	out.Labels = label.NewSet(label.Conf("west.nhs.uk/agg"))
	headers, _, err := MarshalHeaders(out)
	if err != nil {
		t.Fatalf("MarshalHeaders: %v", err)
	}
	if got := headers[HeaderLabels]; got != "label:conf:west.nhs.uk/agg" {
		t.Errorf("label header = %q, want re-labelled set", got)
	}

	// The original still marshals from its memo.
	headers, _, err = MarshalHeaders(src)
	if err != nil {
		t.Fatalf("MarshalHeaders(src): %v", err)
	}
	if got := headers[HeaderLabels]; got != "label:conf:east.nhs.uk/agg" {
		t.Errorf("source label header = %q", got)
	}
}
