// Package webfront implements SafeWeb's web frontend layer (paper §4.4,
// Fig. 3): a Sinatra-style router whose every request is authenticated
// centrally, executed against labelled data, and checked at response time.
//
// The request lifecycle follows Fig. 3 exactly:
//
//  1. The request is authenticated (HTTP basic auth against the web
//     database) and the user's confidentiality privileges are fetched.
//  2. The handler queries the application database; fetched documents are
//     wrapped as labelled values (taint.Doc).
//  3. The handler produces the response from labelled values; every write
//     into the response accumulates labels.
//  4. Before the response is sent, its label set is compared against the
//     user's privileges; without full clearance the operation is aborted
//     and an error page is returned instead.
//
// Step 4 — the check-on-release — is what turns application bugs (omitted
// or wrong access checks, §5.2) into denied requests instead of data
// disclosures.
package webfront

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"safeweb/internal/docstore"
	"safeweb/internal/label"
	"safeweb/internal/taint"
	"safeweb/internal/template"
	"safeweb/internal/webdb"
)

// HandlerFunc handles one routed request.
type HandlerFunc func(c *Ctx) error

// Config configures an App.
type Config struct {
	// WebDB authenticates users and supplies their privileges. Required.
	WebDB *webdb.DB
	// DisableTracking turns the taint-tracking safety net off: documents
	// wrap unlabelled and the release check is skipped. It exists for the
	// paper's baseline measurements ("without SafeWeb's taint tracking
	// library", §5.3) and for demonstrating that injected vulnerabilities
	// really disclose data without SafeWeb. Production deployments leave
	// it false.
	DisableTracking bool
	// AuthWork models the cost of credential verification in hash
	// iterations. The paper's deployment spends 87 ms in HTTP basic
	// authentication (Fig. 5); the default of 1 measures the mechanism,
	// and the evaluation harness raises it to study the paper's latency
	// break-down shape.
	AuthWork int
	// OnRequest observes per-request phase timings after each request;
	// used by the Figure 5 benchmarks. May be nil.
	OnRequest func(PhaseTimes)
	// Logf logs; nil uses log.Printf.
	Logf func(format string, args ...any)
}

// PhaseTimes is the latency break-down of one request, mirroring the
// frontend phases of Figure 5.
type PhaseTimes struct {
	// Auth is time spent authenticating the user.
	Auth time.Duration
	// PrivFetch is time spent fetching the user's privileges.
	PrivFetch time.Duration
	// Handler is time spent in the route handler (template rendering,
	// database access, label propagation).
	Handler time.Duration
	// LabelCheck is time spent checking response labels against the
	// user's privileges.
	LabelCheck time.Duration
	// Status is the final HTTP status.
	Status int
}

// Stats counts frontend activity.
type Stats struct {
	// Requests counts completed requests.
	Requests uint64
	// Blocked counts responses suppressed by the label check — each one
	// is a prevented disclosure.
	Blocked uint64
	// AuthFailures counts failed authentications.
	AuthFailures uint64
}

// App is the SafeWeb web application host.
type App struct {
	cfg    Config
	routes []route
	smartcardState

	mu         sync.Mutex
	violations []Violation

	requests     atomic.Uint64
	blocked      atomic.Uint64
	authFailures atomic.Uint64
}

// Violation records one blocked response.
type Violation struct {
	// Username is the authenticated user whose privileges were
	// insufficient.
	Username string
	// Path is the request path.
	Path string
	// Missing is a label on the response that the user lacks clearance
	// for.
	Missing label.Label
	// Time is when the block happened.
	Time time.Time
}

type route struct {
	method  string
	parts   []string // pattern split on '/', ":name" binds a param
	handler HandlerFunc
	public  bool
}

// New creates an App.
func New(cfg Config) (*App, error) {
	if cfg.WebDB == nil {
		return nil, errors.New("webfront: Config.WebDB is required")
	}
	if cfg.AuthWork <= 0 {
		cfg.AuthWork = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return &App{cfg: cfg}, nil
}

// Get registers a GET route. Patterns use ":name" path parameters, e.g.
// "/records/:mid" (Listing 2).
func (a *App) Get(pattern string, h HandlerFunc) { a.route(http.MethodGet, pattern, h, false) }

// Post registers a POST route.
func (a *App) Post(pattern string, h HandlerFunc) { a.route(http.MethodPost, pattern, h, false) }

// GetPublic registers an unauthenticated GET route (health checks, login
// pages). Handlers see a nil User and empty privileges, so any labelled
// data reaching the response is blocked.
func (a *App) GetPublic(pattern string, h HandlerFunc) { a.route(http.MethodGet, pattern, h, true) }

func (a *App) route(method, pattern string, h HandlerFunc, public bool) {
	a.routes = append(a.routes, route{
		method:  method,
		parts:   strings.Split(strings.Trim(pattern, "/"), "/"),
		handler: h,
		public:  public,
	})
}

// Stats returns a snapshot of frontend counters.
func (a *App) Stats() Stats {
	return Stats{
		Requests:     a.requests.Load(),
		Blocked:      a.blocked.Load(),
		AuthFailures: a.authFailures.Load(),
	}
}

// Violations returns the blocked-response log.
func (a *App) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.violations...)
}

// match finds a route and binds path parameters.
func (a *App) match(method, path string) (*route, map[string]string) {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	for i := range a.routes {
		r := &a.routes[i]
		if r.method != method || len(r.parts) != len(parts) {
			continue
		}
		params := make(map[string]string)
		ok := true
		for j, p := range r.parts {
			if strings.HasPrefix(p, ":") {
				params[p[1:]] = parts[j]
				continue
			}
			if p != parts[j] {
				ok = false
				break
			}
		}
		if ok {
			return r, params
		}
	}
	return nil, nil
}

// verifyCredentials performs the configured amount of credential-hashing
// work, then checks the password. The extra iterations model production
// password hashing (the paper's 87 ms basic-auth cost).
func (a *App) verifyCredentials(username, password string) (*webdb.User, error) {
	work := password
	for i := 1; i < a.cfg.AuthWork; i++ {
		sum := sha256.Sum256([]byte(work))
		work = string(sum[:])
	}
	return a.cfg.WebDB.Authenticate(username, password)
}

// ServeHTTP implements http.Handler.
func (a *App) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer a.requests.Add(1)
	var phases PhaseTimes
	defer func() {
		if a.cfg.OnRequest != nil {
			a.cfg.OnRequest(phases)
		}
	}()

	rt, params := a.match(r.Method, r.URL.Path)
	if rt == nil {
		phases.Status = http.StatusNotFound
		http.NotFound(w, r)
		return
	}

	// Step 1: central authentication (the paper hooks every Sinatra
	// rule, §5.1). Smartcard, session cookie and HTTP basic auth all
	// resolve to the same user record.
	var user *webdb.User
	privs := label.NewPrivileges()
	if !rt.public {
		start := time.Now()
		u, err := a.authenticateRequest(r)
		phases.Auth = time.Since(start)
		if err != nil {
			if !errors.Is(err, errNoCredentials) {
				a.authFailures.Add(1)
			}
			phases.Status = http.StatusUnauthorized
			w.Header().Set("WWW-Authenticate", `Basic realm="safeweb"`)
			http.Error(w, "authentication required", http.StatusUnauthorized)
			return
		}
		user = u

		// Fetch the user's privileges from the web database (Fig. 3
		// step 1).
		start = time.Now()
		privs, err = a.cfg.WebDB.PrivilegesOf(u.ID)
		phases.PrivFetch = time.Since(start)
		if err != nil {
			phases.Status = http.StatusInternalServerError
			http.Error(w, "privilege lookup failed", http.StatusInternalServerError)
			return
		}
	}

	ctx := &Ctx{
		app:     a,
		Request: r,
		Params:  params,
		User:    user,
		Privs:   privs,
		status:  http.StatusOK,
		header:  make(http.Header),
	}

	// Steps 2-3: run the handler, accumulating labelled output.
	start := time.Now()
	err := rt.handler(ctx)
	phases.Handler = time.Since(start)
	if err != nil {
		var httpErr *HTTPError
		if errors.As(err, &httpErr) {
			phases.Status = httpErr.Status
			http.Error(w, httpErr.Msg, httpErr.Status)
			return
		}
		a.cfg.Logf("webfront: handler %s %s: %v", r.Method, r.URL.Path, err)
		phases.Status = http.StatusInternalServerError
		http.Error(w, "internal error", http.StatusInternalServerError)
		return
	}

	// Step 4: check-on-release.
	start = time.Now()
	blockedBy, ok := a.checkRelease(ctx)
	phases.LabelCheck = time.Since(start)
	if !ok {
		a.blocked.Add(1)
		username := ""
		if user != nil {
			username = user.Username
		}
		a.mu.Lock()
		a.violations = append(a.violations, Violation{
			Username: username,
			Path:     r.URL.Path,
			Missing:  blockedBy,
			Time:     time.Now(),
		})
		a.mu.Unlock()
		a.cfg.Logf("webfront: blocked response to %s for %q: no clearance for %s",
			username, r.URL.Path, blockedBy)
		phases.Status = http.StatusForbidden
		// The body is suppressed entirely; the error reveals nothing
		// about the data.
		http.Error(w, "access denied by data flow policy", http.StatusForbidden)
		return
	}

	phases.Status = ctx.status
	for k, vs := range ctx.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(ctx.status)
	if _, err := w.Write([]byte(ctx.body.String())); err != nil {
		a.cfg.Logf("webfront: write response: %v", err)
	}
}

// checkRelease validates the response labels against the user's clearance
// ("the client's privileges are validated to be a superset of the
// confidentiality labels associated with n", §4.4). Integrity labels do
// not restrict release. The user-input marker (package taint's injection
// guard, §4.4 last paragraph) blocks release unconditionally: a response
// still carrying it contains unsanitised user input.
func (a *App) checkRelease(ctx *Ctx) (label.Label, bool) {
	if a.cfg.DisableTracking {
		return label.Label{}, true
	}
	if userTaint := taint.UserTaintLabel(); ctx.labels.Contains(userTaint) {
		return userTaint, false
	}
	for l := range ctx.labels.Confidentiality() {
		if !ctx.Privs.Has(label.Clearance, l) {
			return l, false
		}
	}
	return label.Label{}, true
}

// WrapDoc converts an application-database document into a labelled
// taint.Doc (Fig. 3 step 2). With tracking disabled it wraps without
// labels, which is the unprotected baseline.
func (a *App) WrapDoc(doc *docstore.Document) (taint.Doc, error) {
	labels := doc.Labels
	if a.cfg.DisableTracking {
		labels = nil
	}
	return taint.WrapJSON(doc.Data, labels)
}

// WrapDocs converts a document list.
func (a *App) WrapDocs(docs []*docstore.Document) ([]taint.Doc, error) {
	out := make([]taint.Doc, len(docs))
	for i, d := range docs {
		wrapped, err := a.WrapDoc(d)
		if err != nil {
			return nil, err
		}
		out[i] = wrapped
	}
	return out, nil
}

// HTTPError lets handlers return a specific status without tripping the
// 500 path.
type HTTPError struct {
	// Status is the HTTP status code.
	Status int
	// Msg is the response body.
	Msg string
}

// Error implements the error interface.
func (e *HTTPError) Error() string { return fmt.Sprintf("http %d: %s", e.Status, e.Msg) }

// ErrNotFound is a 404 handler error.
func ErrNotFound(what string) error {
	return &HTTPError{Status: http.StatusNotFound, Msg: what + " not found"}
}

// ErrForbidden is a 403 handler error for application-level access checks
// (the checks SafeWeb backstops but does not replace).
func ErrForbidden(msg string) error {
	return &HTTPError{Status: http.StatusForbidden, Msg: msg}
}

// Ctx is the per-request context passed to handlers.
type Ctx struct {
	app *App
	// Request is the inbound request.
	Request *http.Request
	// Params holds ":name" path parameters.
	Params map[string]string
	// User is the authenticated user; nil on public routes.
	User *webdb.User
	// Privs is the user's label privileges.
	Privs *label.Privileges

	status int
	header http.Header
	body   strings.Builder
	labels label.Set
}

// Param returns a path parameter.
func (c *Ctx) Param(name string) string { return c.Params[name] }

// ParamTainted returns a path parameter as user-tainted input: echoing it
// into the response without sanitisation blocks the response (the XSS
// guard of taint.FromUser).
func (c *Ctx) ParamTainted(name string) taint.String {
	return taint.FromUser(c.Params[name])
}

// Query returns a query parameter as user-tainted input.
func (c *Ctx) Query(name string) taint.String {
	return taint.FromUser(c.Request.URL.Query().Get(name))
}

// Status sets the response status (default 200).
func (c *Ctx) Status(code int) { c.status = code }

// Header sets a response header.
func (c *Ctx) Header(key, value string) { c.header.Set(key, value) }

// Write appends labelled content to the response; its labels join the
// response label set that the release check validates.
func (c *Ctx) Write(s taint.String) {
	c.body.WriteString(s.Raw())
	c.labels = c.labels.Union(s.Labels())
}

// WriteString appends plain (unlabelled) content.
func (c *Ctx) WriteString(s string) { c.body.WriteString(s) }

// JSON writes a labelled string as an application/json response.
func (c *Ctx) JSON(s taint.String) {
	c.Header("Content-Type", "application/json")
	c.Write(s)
}

// Render renders a template into the response, accumulating the labels of
// everything the template interpolated.
func (c *Ctx) Render(t *template.Template, tctx template.Context) error {
	out, err := t.Render(tctx)
	if err != nil {
		return fmt.Errorf("webfront: render %s: %w", t.Name(), err)
	}
	c.Header("Content-Type", "text/html; charset=utf-8")
	c.Write(out)
	return nil
}

// ResponseLabels exposes the labels accumulated so far (for tests).
func (c *Ctx) ResponseLabels() label.Set { return c.labels }
