package broker

import (
	"net"
	"sync"
	"sync/atomic"

	"safeweb/internal/event"
)

// Credit-based flow control: the proactive half of slow-consumer
// protection. A SUBSCRIBE frame may advertise a delivery window in a
// credit header; the server then puts at most that many MESSAGE frames on
// the wire for the subscription before further matched deliveries park in
// a bounded per-subscription pending ring, and the consumer replenishes
// the window with ACK frames carrying a cumulative grant. The reactive
// overflow machinery (OverflowPolicy on the session write queue) stays in
// place underneath as the safety net: it only acts once the pending ring
// itself overflows, or for subscriptions that advertised no window.
//
// Accounting is two monotonic counters per wire subscription — granted
// (the consumer's cumulative allowance) and sent (deliveries claimed
// against it) — so remaining credit is granted-sent and a grant is
// naturally idempotent: applying it is a CAS-max, and a duplicate or
// reordered grant can only be a no-op. The fan-out fast path takes no
// lock: a delivery claims credit with a load (is anything parked?) and a
// CAS on sent. The per-subscription mutex guards only the slow path — the
// pending ring a delivery parks in once credit is exhausted.

// defaultCreditPending is the per-subscription pending ring capacity when
// ServerConfig.CreditPending is zero.
const defaultCreditPending = 32

// CreditStallEvent describes a credited subscription whose window just ran
// dry, reported through ServerConfig.OnCreditStall once per stall run: the
// first delivery that parks raises it, and the run ends when a grant
// drains the pending ring empty.
type CreditStallEvent struct {
	// SessionID and Login identify the stalled consumer's session.
	SessionID uint64
	Login     string
	// Subscription is the client-chosen wire subscription id.
	Subscription string
	// Granted and Sent are the subscription's cumulative allowance and
	// deliveries sent at the time of the stall (remaining credit is their
	// difference, zero here by construction).
	Granted int64
	Sent    int64
	// Parked is the pending-ring occupancy after the stalling delivery
	// parked.
	Parked int
}

// wireSub pairs a broker subscription with its optional credit window.
// credit is nil for subscriptions that advertised no window — infinite
// credit, the pre-credit wire behaviour. Durable subscriptions have no
// broker registration (sub is nil) and a replay feed instead: their
// deliveries come from the journal tail, paced by the same credit window.
type wireSub struct {
	sub    *Subscription
	credit *creditState
	replay *replayFeed
}

// creditState is one wire subscription's flow-control window.
//
// The atomics are the fast path: tryClaim runs on the publishing goroutine
// for every matched delivery and takes no lock. mu guards the pending ring
// and the stall/closed flags; lock order is creditState.mu before
// Server.mu (drain paths call into delivery accounting, which may take the
// server lock) — never acquire creditState.mu while holding Server.mu.
type creditState struct {
	// granted is the consumer's cumulative delivery allowance; sent counts
	// deliveries claimed against it. Remaining credit is granted-sent.
	granted atomic.Int64
	sent    atomic.Int64
	// parked mirrors the ring occupancy for the lock-free fast path: any
	// nonzero value forces new deliveries to park behind the ring so
	// per-publisher order survives a stall.
	parked atomic.Int32

	mu sync.Mutex
	// space signals a freed ring slot to publishers blocked in
	// parkDelivery under OverflowBlock.
	space sync.Cond
	// ring is the bounded pending buffer, a circular queue of n events
	// starting at head.
	ring    []*event.Event
	head, n int
	// stalled marks an in-progress stall run (set on the first park,
	// cleared when a grant drains the ring empty); closed marks
	// subscription teardown — parked and incoming deliveries are dropped
	// as to a closed session.
	stalled bool
	closed  bool
}

func newCreditState(window int64, pending int) *creditState {
	c := &creditState{ring: make([]*event.Event, pending)}
	c.granted.Store(window)
	c.space.L = &c.mu
	return c
}

// tryClaim consumes one credit on the lock-free fast path. It fails when
// deliveries are already parked — even with credit in hand, a new delivery
// must queue behind the ring to keep per-publisher order — or when the
// window is exhausted.
//
//safeweb:hotpath
func (c *creditState) tryClaim() bool {
	if c.parked.Load() != 0 {
		return false
	}
	return c.claim()
}

// waitClaim claims one credit, blocking until the window has room or the
// subscription is torn down (closed: returns false). It is the replay
// feed's pacing gate: the feed is its own delivery source, so instead of
// parking events in the pending ring it simply waits — a grant's
// Broadcast or closeCredit wakes it.
func (c *creditState) waitClaim() bool {
	if c.tryClaim() {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return false
		}
		if c.claim() {
			return true
		}
		c.space.Wait()
	}
}

// claim CASes one credit out of the window, returning false when none
// remains. Safe with or without c.mu held.
//
//safeweb:hotpath
func (c *creditState) claim() bool {
	for {
		sent := c.sent.Load()
		if sent >= c.granted.Load() {
			return false
		}
		if c.sent.CompareAndSwap(sent, sent+1) {
			return true
		}
	}
}

func (c *creditState) pushLocked(ev *event.Event) {
	c.ring[(c.head+c.n)%len(c.ring)] = ev
	c.n++
	c.parked.Store(int32(c.n))
}

func (c *creditState) popLocked() *event.Event {
	ev := c.ring[c.head]
	c.ring[c.head] = nil
	c.head = (c.head + 1) % len(c.ring)
	c.n--
	c.parked.Store(int32(c.n))
	return ev
}

// parkDelivery handles a matched delivery that could not claim credit: it
// parks in the subscription's pending ring, and a full ring falls through
// to the server's overflow policy — the PR 6 machinery acting as safety
// net. Runs on the publishing goroutine; under OverflowBlock a full ring
// blocks it (bounded by a grant, teardown, or eviction), mirroring the
// write-queue semantics of the policy one layer down.
func (s *Server) parkDelivery(ss *serverSession, ws *wireSub, clientSubID string, ev *event.Event) {
	c := ws.credit
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			s.dropDelivery(ss, clientSubID, ev, net.ErrClosed)
			return
		}
		// Re-check under the lock: a grant may have drained the ring since
		// the fast path failed. Order matters — only an empty ring lets a
		// fresh claim jump the queue.
		if c.n == 0 && c.claim() {
			c.mu.Unlock()
			s.sendDelivery(ss, clientSubID, ev)
			return
		}
		if c.n < len(c.ring) {
			break
		}
		switch s.cfg.Overflow {
		case OverflowBlock:
			c.space.Wait()
		case OverflowDropOldest:
			oldest := c.popLocked()
			c.mu.Unlock()
			s.overflowDrop(ss, clientSubID, oldest)
			c.mu.Lock()
		default: // OverflowDropNewest, OverflowDisconnect
			c.mu.Unlock()
			s.overflowDrop(ss, clientSubID, ev)
			return
		}
	}
	c.pushLocked(ev)
	firstStall := !c.stalled
	c.stalled = true
	var stall CreditStallEvent
	if firstStall {
		stall = CreditStallEvent{
			SessionID:    ss.sess.ID(),
			Login:        ss.sess.Login(),
			Subscription: clientSubID,
			Granted:      c.granted.Load(),
			Sent:         c.sent.Load(),
			Parked:       c.n,
		}
	}
	c.mu.Unlock()
	if firstStall {
		s.creditStalls.Add(1)
		ss.creditStalls.Add(1)
		if s.cfg.OnCreditStall != nil {
			s.cfg.OnCreditStall(stall)
		}
	}
}

// creditGrant applies a cumulative replenishment grant and drains as much
// of the pending ring as the new window covers, in park order. A stale or
// duplicate grant (no larger than the current allowance) is an idempotent
// no-op. Runs on the granting session's read goroutine; the ring lock is
// held across the drain so parked order is preserved against concurrent
// publishers.
func (s *Server) creditGrant(ss *serverSession, clientSubID string, ws *wireSub, grant int64) {
	c := ws.credit
	for {
		cur := c.granted.Load()
		if grant <= cur {
			return
		}
		if c.granted.CompareAndSwap(cur, grant) {
			break
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Wake waiters blocked on the window itself (replay feeds in
	// waitClaim) even when nothing is parked — the ring drain below only
	// broadcasts per popped slot.
	c.space.Broadcast()
	for c.n > 0 && !c.closed {
		if !c.claim() {
			return
		}
		ev := c.popLocked()
		c.space.Broadcast()
		s.sendDelivery(ss, clientSubID, ev)
	}
	if c.n == 0 {
		// Ring drained: the stall run is over; the next park starts a new
		// one.
		c.stalled = false
	}
}

// closeCredit tears down a credited subscription: parked deliveries are
// dropped (accounted like deliveries to a closed session) and publishers
// blocked on a full ring are released to observe closed.
func (s *Server) closeCredit(ss *serverSession, clientSubID string, ws *wireSub) {
	c := ws.credit
	if c == nil {
		return
	}
	c.mu.Lock()
	c.closed = true
	c.stalled = false
	var dropped []*event.Event
	for c.n > 0 {
		dropped = append(dropped, c.popLocked())
	}
	c.space.Broadcast()
	c.mu.Unlock()
	for _, ev := range dropped {
		s.dropDelivery(ss, clientSubID, ev, net.ErrClosed)
	}
}
