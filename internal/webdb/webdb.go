// Package webdb implements the web frontend's local database (paper §5.1):
// "data specific to the web frontend, e.g. session and usage data, is
// stored separately in a local web database using the SQLite database
// engine." It also holds "user accounts and their label privileges".
//
// The store is an embedded, optionally file-persisted database with the
// tables the MDT portal needs: users (with salted password hashes), label
// privilege grants, the application-level privilege rows of Listing 3
// (u_id, hospital, clinic), sessions and a usage log. Keeping it separate
// from the application database isolates web session state from
// confidential application data, as the paper's deployment does.
package webdb

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"safeweb/internal/label"
)

// Common errors.
var (
	ErrUserExists   = errors.New("webdb: user already exists")
	ErrNoUser       = errors.New("webdb: no such user")
	ErrBadPassword  = errors.New("webdb: wrong password")
	ErrNoSession    = errors.New("webdb: no such session")
	ErrSessionStale = errors.New("webdb: session expired")
)

// User is a web frontend account.
type User struct {
	// ID is the numeric user id (Listing 3's u_id).
	ID int `json:"id"`
	// Username is the login name, unique.
	Username string `json:"username"`
	// Salt and PassHash store the salted SHA-256 credential.
	Salt     string `json:"salt"`
	PassHash string `json:"pass_hash"`
	// IsAdmin marks portal administrators (Listing 3's @is_admin).
	IsAdmin bool `json:"is_admin,omitempty"`
	// MDT is the user's multidisciplinary team id.
	MDT string `json:"mdt,omitempty"`
	// Region is the user's region, for regional aggregate access.
	Region string `json:"region,omitempty"`
}

// PrivilegeRow is the application-level privilege relation of Listing 3:
// one row grants the user access to one (hospital, clinic) combination.
type PrivilegeRow struct {
	UID      int    `json:"u_id"`
	Hospital string `json:"hospital"`
	Clinic   string `json:"clinic"`
}

// LabelGrant is one label-privilege grant for a user; the web frontend
// assembles each authenticated request's label.Privileges from these.
type LabelGrant struct {
	UID       int    `json:"u_id"`
	Privilege string `json:"privilege"` // "clearance", "declassify", ...
	Pattern   string `json:"pattern"`   // label URI or prefix pattern
}

// Session is a logged-in web session.
type Session struct {
	Token   string    `json:"token"`
	UID     int       `json:"u_id"`
	Created time.Time `json:"created"`
	Expires time.Time `json:"expires"`
}

// DB is the web database. It is safe for concurrent use.
type DB struct {
	mu          sync.RWMutex
	usersByName map[string]*User
	usersByID   map[int]*User
	privRows    []PrivilegeRow
	grants      []LabelGrant
	sessions    map[string]*Session
	usage       []UsageRecord
	nextUID     int
}

// UsageRecord is one usage-log entry.
type UsageRecord struct {
	Time     time.Time `json:"time"`
	Username string    `json:"username"`
	Path     string    `json:"path"`
	Status   int       `json:"status"`
}

// New creates an empty web database.
func New() *DB {
	return &DB{
		usersByName: make(map[string]*User),
		usersByID:   make(map[int]*User),
		sessions:    make(map[string]*Session),
	}
}

// hashPassword derives the stored hash for a password and salt.
func hashPassword(salt, password string) string {
	sum := sha256.Sum256([]byte(salt + ":" + password))
	return hex.EncodeToString(sum[:])
}

func randomHex(n int) string {
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil {
		// crypto/rand failure means the platform RNG is broken; there is
		// no meaningful fallback for credential material.
		panic(fmt.Sprintf("webdb: crypto/rand: %v", err))
	}
	return hex.EncodeToString(buf)
}

// CreateUser adds a user with the given password.
func (db *DB) CreateUser(username, password string, opts ...UserOption) (*User, error) {
	if username == "" {
		return nil, errors.New("webdb: empty username")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.usersByName[username]; dup {
		return nil, fmt.Errorf("%w: %q", ErrUserExists, username)
	}
	db.nextUID++
	salt := randomHex(16)
	u := &User{
		ID:       db.nextUID,
		Username: username,
		Salt:     salt,
		PassHash: hashPassword(salt, password),
	}
	for _, opt := range opts {
		opt(u)
	}
	db.usersByName[username] = u
	db.usersByID[u.ID] = u
	return cloneUser(u), nil
}

// UserOption configures a new user.
type UserOption func(*User)

// WithAdmin marks the user as an administrator.
func WithAdmin() UserOption { return func(u *User) { u.IsAdmin = true } }

// WithMDT sets the user's MDT and region.
func WithMDT(mdt, region string) UserOption {
	return func(u *User) {
		u.MDT = mdt
		u.Region = region
	}
}

// Authenticate verifies credentials with an exact, constant-time
// comparison and returns the user.
func (db *DB) Authenticate(username, password string) (*User, error) {
	db.mu.RLock()
	u := db.usersByName[username]
	db.mu.RUnlock()
	if u == nil {
		// Burn a hash anyway so probe timing does not reveal whether the
		// account exists.
		_ = hashPassword("no-such-user", password)
		return nil, fmt.Errorf("%w: %q", ErrNoUser, username)
	}
	want := u.PassHash
	got := hashPassword(u.Salt, password)
	if subtle.ConstantTimeCompare([]byte(want), []byte(got)) != 1 {
		return nil, ErrBadPassword
	}
	return cloneUser(u), nil
}

// FindUser looks a user up by exact username.
func (db *DB) FindUser(username string) (*User, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	u := db.usersByName[username]
	if u == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoUser, username)
	}
	return cloneUser(u), nil
}

// FindUserFold looks a user up ignoring ASCII case. It exists only to
// support the §5.2 "errors in access checks" experiment, which injects a
// case-insensitive user lookup (usernames mdt1 vs MDT1 sharing
// privileges); production code must use FindUser.
func (db *DB) FindUserFold(username string) (*User, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	// Deliberately no exact-match preference: a SQL LOWER(username) =
	// LOWER(?) lookup has none either, which is precisely how the
	// mdt1/MDT1 confusion arises. Deterministic order keeps the injected
	// bug reproducible.
	names := make([]string, 0, len(db.usersByName))
	for name := range db.usersByName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if strings.EqualFold(name, username) {
			return cloneUser(db.usersByName[name]), nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrNoUser, username)
}

// FindUserByID looks a user up by id.
func (db *DB) FindUserByID(id int) (*User, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	u := db.usersByID[id]
	if u == nil {
		return nil, fmt.Errorf("%w: id %d", ErrNoUser, id)
	}
	return cloneUser(u), nil
}

func cloneUser(u *User) *User {
	out := *u
	return &out
}

// ---- application privilege rows (Listing 3) ----

// AddPrivilegeRow inserts a (u_id, hospital, clinic) privilege row.
func (db *DB) AddPrivilegeRow(row PrivilegeRow) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.privRows = append(db.privRows, row)
}

// PrivilegeCond filters privilege rows; zero-valued fields match anything.
type PrivilegeCond struct {
	UID      int
	Hospital string
	Clinic   string
}

// CountPrivileges counts rows matching the condition — the query in
// Listing 3: Privileges.count(:conditions => {:u_id, :hospital, :clinic}).
func (db *DB) CountPrivileges(cond PrivilegeCond) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, row := range db.privRows {
		if cond.UID != 0 && row.UID != cond.UID {
			continue
		}
		if cond.Hospital != "" && row.Hospital != cond.Hospital {
			continue
		}
		if cond.Clinic != "" && row.Clinic != cond.Clinic {
			continue
		}
		n++
	}
	return n
}

// ---- label privileges ----

// GrantLabel records a label-privilege grant for a user.
func (db *DB) GrantLabel(uid int, priv label.Privilege, pattern label.Pattern) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.grants = append(db.grants, LabelGrant{
		UID:       uid,
		Privilege: priv.String(),
		Pattern:   pattern.String(),
	})
}

// PrivilegesOf assembles the label privileges of a user from its grants.
// This is the "user's privileges" fetched in step 1 of Fig. 3.
func (db *DB) PrivilegesOf(uid int) (*label.Privileges, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	privs := label.NewPrivileges()
	for _, g := range db.grants {
		if g.UID != uid {
			continue
		}
		p, err := label.ParsePrivilege(g.Privilege)
		if err != nil {
			return nil, fmt.Errorf("webdb: grant for uid %d: %w", uid, err)
		}
		pat, err := label.ParsePattern(g.Pattern)
		if err != nil {
			return nil, fmt.Errorf("webdb: grant for uid %d: %w", uid, err)
		}
		privs.Grant(p, pat)
	}
	return privs, nil
}

// ---- sessions ----

// CreateSession opens a session for the user with the given lifetime.
func (db *DB) CreateSession(uid int, ttl time.Duration) *Session {
	now := time.Now()
	s := &Session{
		Token:   randomHex(24),
		UID:     uid,
		Created: now,
		Expires: now.Add(ttl),
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.sessions[s.Token] = s
	return s
}

// GetSession resolves and validates a session token.
func (db *DB) GetSession(token string) (*Session, error) {
	db.mu.RLock()
	s := db.sessions[token]
	db.mu.RUnlock()
	if s == nil {
		return nil, ErrNoSession
	}
	if time.Now().After(s.Expires) {
		db.mu.Lock()
		delete(db.sessions, token)
		db.mu.Unlock()
		return nil, ErrSessionStale
	}
	out := *s
	return &out, nil
}

// DeleteSession logs a session out.
func (db *DB) DeleteSession(token string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.sessions, token)
}

// ---- usage log ----

// LogUsage appends a usage record.
func (db *DB) LogUsage(rec UsageRecord) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.usage = append(db.usage, rec)
}

// Usage returns a copy of the usage log.
func (db *DB) Usage() []UsageRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]UsageRecord(nil), db.usage...)
}

// ---- persistence ----

// fileImage is the JSON on-disk representation.
type fileImage struct {
	Users    []*User        `json:"users"`
	PrivRows []PrivilegeRow `json:"privilege_rows"`
	Grants   []LabelGrant   `json:"label_grants"`
	NextUID  int            `json:"next_uid"`
}

// Save writes the database (excluding sessions and usage, which are
// ephemeral) to path.
func (db *DB) Save(path string) error {
	db.mu.RLock()
	img := fileImage{
		PrivRows: append([]PrivilegeRow(nil), db.privRows...),
		Grants:   append([]LabelGrant(nil), db.grants...),
		NextUID:  db.nextUID,
	}
	for _, u := range db.usersByID {
		img.Users = append(img.Users, cloneUser(u))
	}
	db.mu.RUnlock()
	sort.Slice(img.Users, func(i, j int) bool { return img.Users[i].ID < img.Users[j].ID })

	data, err := json.MarshalIndent(img, "", "  ")
	if err != nil {
		return fmt.Errorf("webdb: encode: %w", err)
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		return fmt.Errorf("webdb: save: %w", err)
	}
	return nil
}

// Load reads a database image from path.
func Load(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("webdb: load: %w", err)
	}
	var img fileImage
	if err := json.Unmarshal(data, &img); err != nil {
		return nil, fmt.Errorf("webdb: decode: %w", err)
	}
	db := New()
	db.nextUID = img.NextUID
	db.privRows = img.PrivRows
	db.grants = img.Grants
	for _, u := range img.Users {
		db.usersByName[u.Username] = u
		db.usersByID[u.ID] = u
	}
	return db, nil
}
