package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns the full safeweb-vet suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		FrozenMutate,
		NoRetain,
		PolicyGen,
		HotPathLock,
	}
}

// Package-path suffixes identifying the safeweb packages whose types the
// analyzers key on. Matching by suffix (rather than the literal module
// path) keeps the analyzers working on analysistest testdata packages,
// which mirror the real import paths under testdata/src.
const (
	eventPkg  = "internal/event"
	stompPkg  = "internal/stomp"
	enginePkg = "internal/engine"
	brokerPkg = "internal/broker"
)

func pkgPathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// namedType unwraps aliases and at most one pointer and returns the named
// type beneath, if any.
func namedType(t types.Type) (*types.Named, bool) {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// isPkgType reports whether t is (a pointer to) the named type name
// defined in a package whose import path ends in pkgSuffix.
func isPkgType(t types.Type, pkgSuffix, name string) bool {
	n, ok := namedType(t)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pkgPathMatches(obj.Pkg().Path(), pkgSuffix)
}

// isPtrToPkgType is isPkgType restricted to pointer values.
func isPtrToPkgType(t types.Type, pkgSuffix, name string) bool {
	if _, ok := types.Unalias(t).(*types.Pointer); !ok {
		return false
	}
	return isPkgType(t, pkgSuffix, name)
}

// methodCall resolves a call of the form x.M(...) to its method object
// and receiver type. It returns nil for anything else (package functions,
// function values, conversions, builtins).
func methodCall(info *types.Info, call *ast.CallExpr) (*types.Func, types.Type) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, nil
	}
	return fn, sig.Recv().Type()
}

// funcBodies maps every function and method declared in the package to
// its declaration, for transitive walks.
func funcBodies(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}
