package stomp

import "strconv"

// Credit flow control rides two frames of the ordinary STOMP vocabulary:
//
//   - SUBSCRIBE may carry a credit header advertising the consumer's
//     delivery window — the broker will put at most that many MESSAGE
//     frames on the wire for the subscription before further matched
//     deliveries park broker-side. A SUBSCRIBE without the header keeps
//     today's wire behaviour: infinite credit, byte-identical frames.
//   - ACK carries a replenishment grant: a subscription header naming the
//     wire subscription and a credit header holding the consumer's
//     cumulative delivery allowance (initial window + deliveries whose
//     processing has completed). Grants are cumulative and idempotent —
//     a duplicate or reordered grant can only be a no-op, never a
//     regression of the window — so the sender needs no delivery
//     tracking handshake, just a monotonic counter.
//
// This file holds the pieces both ends share: the header name, the
// fail-closed parser, and the client-side grant sender. The broker-side
// accounting (per-subscription atomic windows, the pending ring) lives in
// package broker.

// HdrCredit is the header carrying a delivery window on SUBSCRIBE and a
// cumulative replenishment grant on ACK.
const HdrCredit = "credit"

// ParseCredit parses a credit header value: a positive decimal int64.
// Anything else — empty, non-numeric, zero, negative, or overflowing —
// fails closed with a ProtocolError so a malformed grant can reject the
// frame but never grant.
func ParseCredit(s string) (int64, error) {
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, protoErrorf("credit header %q: not a decimal int64", s)
	}
	if n <= 0 {
		return 0, protoErrorf("credit header %q: must be positive", s)
	}
	return n, nil
}

// SendCreditGrant sends an ACK frame granting the subscription a
// cumulative delivery allowance of grant messages. Grants are cumulative:
// each one restates the total allowance, so senders may batch (one grant
// per half-window consumed) and the wire may reorder or duplicate them
// without the window ever regressing. Fire-and-forget, like the MESSAGE
// deliveries it answers.
func (c *Client) SendCreditGrant(subscription string, grant int64) error {
	f := NewFrame(CmdAck)
	f.SetHeader(HdrSubscription, subscription)
	f.SetHeader(HdrCredit, strconv.FormatInt(grant, 10))
	return c.writeFrame(f)
}
