package taint

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"safeweb/internal/label"
)

// quickStr generates random labelled strings over a small label universe.
type quickStr struct{ S String }

// Generate implements quick.Generator.
func (quickStr) Generate(rnd *rand.Rand, _ int) reflect.Value {
	labels := []label.Label{
		label.Conf("a"), label.Conf("b"), label.Conf("c"),
		label.Int("i"), label.Int("j"),
	}
	set := make(label.Set)
	for _, l := range labels {
		if rnd.Intn(3) == 0 {
			set[l] = struct{}{}
		}
	}
	content := make([]byte, rnd.Intn(12))
	for i := range content {
		content[i] = byte('a' + rnd.Intn(26))
	}
	return reflect.ValueOf(quickStr{S: WrapString(string(content), set)})
}

var _cfg = &quick.Config{MaxCount: 400}

// TestQuickConcatConfMonotonic: the core taint-tracking safety property —
// no confidentiality label of any operand is ever lost by an operation.
func TestQuickConcatConfMonotonic(t *testing.T) {
	prop := func(a, b quickStr) bool {
		c := a.S.Concat(b.S)
		return a.S.Labels().Confidentiality().SubsetOf(c.Labels()) &&
			b.S.Labels().Confidentiality().SubsetOf(c.Labels())
	}
	if err := quick.Check(prop, _cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickConcatContent: contents concatenate exactly.
func TestQuickConcatContent(t *testing.T) {
	prop := func(a, b quickStr) bool {
		return a.S.Concat(b.S).Raw() == a.S.Raw()+b.S.Raw()
	}
	if err := quick.Check(prop, _cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickConcatIntegrityFragile: an integrity label appears on the
// result iff all operands carry it.
func TestQuickConcatIntegrityFragile(t *testing.T) {
	prop := func(a, b quickStr) bool {
		c := a.S.Concat(b.S)
		want := a.S.Labels().Integrity().Intersect(b.S.Labels().Integrity())
		return c.Labels().Integrity().Equal(want)
	}
	if err := quick.Check(prop, _cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSplitJoinPreservesConf: splitting and rejoining keeps content
// and never loses confidentiality labels.
func TestQuickSplitJoinPreservesConf(t *testing.T) {
	prop := func(a quickStr) bool {
		parts := a.S.Split("x")
		joined := Join(parts, "x")
		if joined.Raw() != a.S.Raw() {
			return false
		}
		return a.S.Labels().Confidentiality().SubsetOf(joined.Labels())
	}
	if err := quick.Check(prop, _cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSprintfCollectsAll: Sprintf output carries every argument's
// confidentiality labels.
func TestQuickSprintfCollectsAll(t *testing.T) {
	prop := func(a, b, c quickStr) bool {
		out := Sprintf("%s|%s|%s", a.S, b.S, c.S)
		for _, in := range []quickStr{a, b, c} {
			if !in.S.Labels().Confidentiality().SubsetOf(out.Labels()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, _cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickNumberOpsMonotonic: arithmetic never loses confidentiality.
func TestQuickNumberOpsMonotonic(t *testing.T) {
	prop := func(x, y int16, pick uint8) bool {
		a := WrapNumber(float64(x), label.NewSet(label.Conf("a")))
		b := WrapNumber(float64(y), label.NewSet(label.Conf("b")))
		var c Number
		switch pick % 4 {
		case 0:
			c = a.Add(b)
		case 1:
			c = a.Sub(b)
		case 2:
			c = a.Mul(b)
		default:
			c = a.Div(b)
		}
		return c.Labels().Contains(label.Conf("a")) && c.Labels().Contains(label.Conf("b"))
	}
	if err := quick.Check(prop, _cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickDocMarshalCarriesAllConf: a serialised document's labels cover
// the confidentiality of every field.
func TestQuickDocMarshalCarriesAllConf(t *testing.T) {
	prop := func(a, b quickStr) bool {
		doc := Doc{"a": a.S, "b": b.S}
		s, err := doc.ToJSON()
		if err != nil {
			return false
		}
		return a.S.Labels().Confidentiality().SubsetOf(s.Labels()) &&
			b.S.Labels().Confidentiality().SubsetOf(s.Labels())
	}
	if err := quick.Check(prop, _cfg); err != nil {
		t.Error(err)
	}
}
