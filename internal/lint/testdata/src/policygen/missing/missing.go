// A generation-counted Policy with no classification maps at all.
package missing

import "sync/atomic"

type Policy struct { // want `no policyMutators/policyReaders classification maps`
	gen atomic.Uint64
}

func (p *Policy) Touch() { p.gen.Add(1) }
