// Command safetynet demonstrates the paper's central claim live (§5.2):
// it injects each of the four CVE-derived vulnerability classes into the
// MDT portal, attacks the portal twice — once without SafeWeb's taint
// tracking and once with it — and prints the resulting disclosure matrix.
//
// Run it with:
//
//	go run ./examples/safetynet
//
// Expected output: every vulnerability discloses confidential records in
// the unprotected baseline and is blocked (HTTP 403, empty body) with
// SafeWeb enabled.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"safeweb/internal/vulninject"
)

func main() {
	outcomes, err := vulninject.RunAll(func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "safetynet:", err)
		os.Exit(1)
	}

	fmt.Println("\n§5.2 security evaluation matrix:")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "vulnerability class\tCVE examples\twithout SafeWeb\twith SafeWeb")
	fmt.Fprintln(w, "-------------------\t------------\t---------------\t------------")
	allPassed := true
	for _, o := range outcomes {
		baseline := "no disclosure?!"
		if o.BaselineDisclosed {
			baseline = "DATA DISCLOSED"
		}
		protected := "DISCLOSED?!"
		if o.SafeWebPrevented {
			protected = "blocked (403)"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", o.Name, o.CVEs, baseline, protected)
		allPassed = allPassed && o.Passed()
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "safetynet:", err)
		os.Exit(1)
	}
	if !allPassed {
		fmt.Println("\nFAILED: at least one experiment did not reproduce the paper's result")
		os.Exit(1)
	}
	fmt.Println("\nall four vulnerability classes disclosed data without SafeWeb and were prevented with it")
}
