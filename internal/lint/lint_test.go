package lint_test

import (
	"testing"

	"safeweb/internal/lint"
	"safeweb/internal/lint/linttest"
)

func TestFrozenMutate(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.FrozenMutate, "frozenmutate/a")
}

func TestNoRetain(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.NoRetain, "noretain/a")
}

func TestPolicyGen(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.PolicyGen,
		"policygen/a", "policygen/missing", "policygen/other")
}

func TestHotPathLock(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.HotPathLock, "hotpathlock/a")
}

func TestAnalyzerNamesStable(t *testing.T) {
	want := []string{"frozenmutate", "noretain", "policygen", "hotpathlock"}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}
