package selector

import (
	"fmt"
	"regexp"
	"strings"
)

// expr is a parsed selector expression node. Nodes evaluate to a value
// under an attribute environment and can print themselves back to selector
// syntax (used by tests to verify parse/print round-trips and by the broker
// to normalise subscriptions).
type expr interface {
	eval(env Env) value
	String() string
}

// Env supplies attribute values during evaluation. Lookup returns the
// attribute value and whether the attribute exists; missing attributes are
// SQL NULL.
type Env interface {
	Lookup(name string) (string, bool)
}

// MapEnv adapts a plain map to Env.
type MapEnv map[string]string

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (string, bool) {
	v, ok := m[name]
	return v, ok
}

// ---- literals and identifiers ----

type identExpr struct{ name string }

func (e identExpr) String() string { return e.name }

type stringLit struct{ val string }

func (e stringLit) String() string {
	return "'" + strings.ReplaceAll(e.val, "'", "''") + "'"
}

type numberLit struct {
	val  float64
	text string // original spelling, preserved for printing
}

func (e numberLit) String() string { return e.text }

type boolLit struct{ val bool }

func (e boolLit) String() string {
	if e.val {
		return "TRUE"
	}
	return "FALSE"
}

// ---- compound expressions ----

// binaryOp enumerates binary operators.
type binaryOp int

const (
	opEq binaryOp = iota + 1
	opNeq
	opLt
	opLe
	opGt
	opGe
	opAnd
	opOr
	opAdd
	opSub
	opMul
	opDiv
)

func (op binaryOp) String() string {
	switch op {
	case opEq:
		return "="
	case opNeq:
		return "<>"
	case opLt:
		return "<"
	case opLe:
		return "<="
	case opGt:
		return ">"
	case opGe:
		return ">="
	case opAnd:
		return "AND"
	case opOr:
		return "OR"
	case opAdd:
		return "+"
	case opSub:
		return "-"
	case opMul:
		return "*"
	case opDiv:
		return "/"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

type binaryExpr struct {
	op   binaryOp
	l, r expr
}

func (e binaryExpr) String() string {
	return "(" + e.l.String() + " " + e.op.String() + " " + e.r.String() + ")"
}

type notExpr struct{ inner expr }

func (e notExpr) String() string { return "(NOT " + e.inner.String() + ")" }

type negExpr struct{ inner expr }

func (e negExpr) String() string { return "(-" + e.inner.String() + ")" }

type betweenExpr struct {
	subject expr
	lo, hi  expr
	negated bool
}

func (e betweenExpr) String() string {
	op := " BETWEEN "
	if e.negated {
		op = " NOT BETWEEN "
	}
	return "(" + e.subject.String() + op + e.lo.String() + " AND " + e.hi.String() + ")"
}

type inExpr struct {
	subject expr
	items   []string
	negated bool
}

func (e inExpr) String() string {
	var b strings.Builder
	b.WriteString("(" + e.subject.String())
	if e.negated {
		b.WriteString(" NOT")
	}
	b.WriteString(" IN (")
	for i, item := range e.items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(stringLit{item}.String())
	}
	b.WriteString("))")
	return b.String()
}

type likeExpr struct {
	subject expr
	pattern string
	escape  string // "" when no ESCAPE clause
	negated bool
	re      *regexp.Regexp // compiled at parse time
}

func (e likeExpr) String() string {
	var b strings.Builder
	b.WriteString("(" + e.subject.String())
	if e.negated {
		b.WriteString(" NOT")
	}
	b.WriteString(" LIKE " + stringLit{e.pattern}.String())
	if e.escape != "" {
		b.WriteString(" ESCAPE " + stringLit{e.escape}.String())
	}
	b.WriteString(")")
	return b.String()
}

type isNullExpr struct {
	subject expr
	negated bool // IS NOT NULL
}

func (e isNullExpr) String() string {
	if e.negated {
		return "(" + e.subject.String() + " IS NOT NULL)"
	}
	return "(" + e.subject.String() + " IS NULL)"
}

// compileLike translates a SQL LIKE pattern ('%' any run, '_' any one
// character, with optional escape character) into an anchored regexp.
func compileLike(pattern, escape string) (*regexp.Regexp, error) {
	var esc byte
	hasEsc := false
	if escape != "" {
		if len(escape) != 1 {
			return nil, fmt.Errorf("selector: ESCAPE must be a single character, got %q", escape)
		}
		esc = escape[0]
		hasEsc = true
	}
	var b strings.Builder
	b.WriteString(`(?s)\A`)
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		if hasEsc && c == esc {
			i++
			if i >= len(pattern) {
				return nil, fmt.Errorf("selector: dangling escape in LIKE pattern %q", pattern)
			}
			b.WriteString(regexp.QuoteMeta(string(pattern[i])))
			continue
		}
		switch c {
		case '%':
			b.WriteString(".*")
		case '_':
			b.WriteString(".")
		default:
			b.WriteString(regexp.QuoteMeta(string(c)))
		}
	}
	b.WriteString(`\z`)
	return regexp.Compile(b.String())
}
