package label

import (
	"math/rand"
	"reflect"
	"testing"
)

// The policyMutators/policyReaders classification lives in
// policy_class.go, shared with the policygen analyzer that re-checks the
// same contract at compile time.

// TestPolicyMethodsClassified forces the author of any new Policy method
// to decide whether it mutates: an unclassified method fails the test, and
// classifying it as a mutator subjects it to the generation property
// below.
func TestPolicyMethodsClassified(t *testing.T) {
	typ := reflect.TypeOf(&Policy{})
	for i := 0; i < typ.NumMethod(); i++ {
		name := typ.Method(i).Name
		if policyMutators[name] == policyReaders[name] {
			t.Errorf("Policy.%s is not classified as exactly one of mutator/reader; "+
				"add it to policyMutators or policyReaders (mutators MUST bump the generation)", name)
		}
	}
}

// TestPolicyMutatorsBumpGeneration property-checks the cached-clearance
// invariant over random operation sequences: every mutating call moves
// Generation (Revoke exactly when it reports a removal), and no reader
// ever moves it. A subscription caching privileges tagged with the
// generation therefore can never serve a stale snapshot after any
// mutation path.
func TestPolicyMutatorsBumpGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	principals := []string{"alice", "bob", "unit-a", "unit-b"}
	patterns := []string{
		"label:conf:ecric.org.uk/*",
		"label:conf:ecric.org.uk/mdt/7",
		"label:int:ecric.org.uk/app",
		"label:conf:*",
	}
	privs := []Privilege{Clearance, Declassify, Endorse, ClearLow}

	p := NewPolicy()
	exercised := make(map[string]int)
	for i := 0; i < 2000; i++ {
		principal := principals[rng.Intn(len(principals))]
		pat := MustParsePattern(patterns[rng.Intn(len(patterns))])
		priv := privs[rng.Intn(len(privs))]
		before := p.Generation()

		var name string
		mustBump := true
		switch rng.Intn(5) {
		case 0:
			name = "SetPrincipal"
			p.SetPrincipal(principal, NewPrivileges().Grant(priv, pat), rng.Intn(2) == 0)
		case 1:
			name = "RemovePrincipal"
			p.RemovePrincipal(principal)
		case 2:
			name = "Grant"
			p.Grant(principal, priv, pat)
		case 3:
			name = "Revoke"
			mustBump = p.Revoke(principal, priv, pat)
		default:
			// Readers interleaved with mutators must never move the
			// generation.
			name = "readers"
			mustBump = false
			_ = p.PrivilegesOf(principal)
			_ = p.IsPrivileged(principal)
			_ = p.Principals()
			if got := p.Generation(); got != before {
				t.Fatalf("op %d: readers moved generation %d -> %d", i, before, got)
			}
		}
		exercised[name]++

		after := p.Generation()
		if mustBump && after <= before {
			t.Fatalf("op %d: %s(%s, %v, %s) did not bump generation (%d -> %d)",
				i, name, principal, priv, pat, before, after)
		}
		if !mustBump && name == "Revoke" && after != before {
			t.Fatalf("op %d: no-op Revoke moved generation %d -> %d", i, before, after)
		}
	}

	// Every classified mutator must actually have been exercised, so the
	// property cannot silently stop covering one.
	for name := range policyMutators {
		if exercised[name] == 0 {
			t.Errorf("mutator %s never exercised by the property test", name)
		}
	}
}
