package label

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genSet produces a random small label set drawn from a bounded universe so
// that set operations exercise overlaps.
func genSet(rnd *rand.Rand) Set {
	names := []string{"a", "b", "c", "d", "e", "f"}
	s := make(Set)
	n := rnd.Intn(5)
	for i := 0; i < n; i++ {
		name := names[rnd.Intn(len(names))]
		if rnd.Intn(2) == 0 {
			s[Conf(name)] = struct{}{}
		} else {
			s[Int(name)] = struct{}{}
		}
	}
	return s
}

// quickSet adapts genSet to testing/quick's Generator protocol.
type quickSet struct{ Set }

// Generate implements quick.Generator.
func (quickSet) Generate(rnd *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickSet{genSet(rnd)})
}

var _quickCfg = &quick.Config{MaxCount: 500}

func TestQuickUnionLaws(t *testing.T) {
	commutative := func(a, b quickSet) bool {
		return a.Union(b.Set).Equal(b.Union(a.Set))
	}
	if err := quick.Check(commutative, _quickCfg); err != nil {
		t.Errorf("union not commutative: %v", err)
	}
	associative := func(a, b, c quickSet) bool {
		return a.Union(b.Set).Union(c.Set).Equal(a.Union(b.Union(c.Set)))
	}
	if err := quick.Check(associative, _quickCfg); err != nil {
		t.Errorf("union not associative: %v", err)
	}
	idempotent := func(a quickSet) bool {
		return a.Union(a.Set).Equal(a.Set)
	}
	if err := quick.Check(idempotent, _quickCfg); err != nil {
		t.Errorf("union not idempotent: %v", err)
	}
}

func TestQuickIntersectLaws(t *testing.T) {
	commutative := func(a, b quickSet) bool {
		return a.Intersect(b.Set).Equal(b.Intersect(a.Set))
	}
	if err := quick.Check(commutative, _quickCfg); err != nil {
		t.Errorf("intersect not commutative: %v", err)
	}
	absorbed := func(a, b quickSet) bool {
		return a.Intersect(b.Set).SubsetOf(a.Set) && a.Intersect(b.Set).SubsetOf(b.Set)
	}
	if err := quick.Check(absorbed, _quickCfg); err != nil {
		t.Errorf("intersect not subset of operands: %v", err)
	}
}

func TestQuickSubsetPartialOrder(t *testing.T) {
	reflexive := func(a quickSet) bool { return a.SubsetOf(a.Set) }
	if err := quick.Check(reflexive, _quickCfg); err != nil {
		t.Errorf("subset not reflexive: %v", err)
	}
	transitive := func(a, b, c quickSet) bool {
		if a.SubsetOf(b.Set) && b.SubsetOf(c.Set) {
			return a.SubsetOf(c.Set)
		}
		return true
	}
	if err := quick.Check(transitive, _quickCfg); err != nil {
		t.Errorf("subset not transitive: %v", err)
	}
	antisymmetric := func(a, b quickSet) bool {
		if a.SubsetOf(b.Set) && b.SubsetOf(a.Set) {
			return a.Equal(b.Set)
		}
		return true
	}
	if err := quick.Check(antisymmetric, _quickCfg); err != nil {
		t.Errorf("subset not antisymmetric: %v", err)
	}
}

// TestQuickDeriveMonotonic checks the core IFC safety property of
// derivation: confidentiality never shrinks (sticky) and integrity never
// grows (fragile) relative to each source.
func TestQuickDeriveMonotonic(t *testing.T) {
	prop := func(a, b quickSet) bool {
		d := Derive(a.Set, b.Set)
		if !a.Confidentiality().SubsetOf(d) || !b.Confidentiality().SubsetOf(d) {
			return false
		}
		if !d.Integrity().SubsetOf(a.Integrity()) || !d.Integrity().SubsetOf(b.Integrity()) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, _quickCfg); err != nil {
		t.Errorf("derive violates sticky/fragile laws: %v", err)
	}
}

// TestQuickDeriveAssociative checks that folding Derive pairwise equals
// deriving from all sources at once, so multi-input units may combine
// events in any order.
func TestQuickDeriveAssociative(t *testing.T) {
	prop := func(a, b, c quickSet) bool {
		allAtOnce := Derive(a.Set, b.Set, c.Set)
		folded := Derive(Derive(a.Set, b.Set), c.Set)
		return allAtOnce.Equal(folded)
	}
	if err := quick.Check(prop, _quickCfg); err != nil {
		t.Errorf("derive not associative: %v", err)
	}
}

// TestQuickSetStringRoundTrip checks the wire representation parses back to
// an equal set.
func TestQuickSetStringRoundTrip(t *testing.T) {
	prop := func(a quickSet) bool {
		back, err := ParseSet(a.String())
		return err == nil && back.Equal(a.Set)
	}
	if err := quick.Check(prop, _quickCfg); err != nil {
		t.Errorf("set string round trip failed: %v", err)
	}
}
