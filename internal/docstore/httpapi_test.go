package docstore

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"safeweb/internal/label"
)

func newAPIServer(t *testing.T, s *Store) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(Handler(s))
	t.Cleanup(srv.Close)
	return srv
}

func doReq(t *testing.T, method, url, body string, headers map[string]string) (*http.Response, map[string]any) {
	t.Helper()
	var reader *strings.Reader
	if body == "" {
		reader = strings.NewReader("")
	} else {
		reader = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	t.Cleanup(func() { _ = resp.Body.Close() })
	var decoded map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&decoded)
	return resp, decoded
}

func TestHTTPPutGet(t *testing.T) {
	s := New("app", Options{})
	srv := newAPIServer(t, s)

	resp, body := doReq(t, "PUT", srv.URL+"/rec-1", `{"mid":"7"}`,
		map[string]string{"X-Safeweb-Labels": mdt7.String()})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d (%v)", resp.StatusCode, body)
	}
	rev, _ := body["rev"].(string)
	if rev == "" {
		t.Fatal("no rev returned")
	}

	resp, body = doReq(t, "GET", srv.URL+"/rec-1", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Safeweb-Labels"); got != mdt7.String() {
		t.Errorf("label header = %q", got)
	}
	data, _ := body["data"].(map[string]any)
	if data["mid"] != "7" {
		t.Errorf("data = %v", body["data"])
	}

	// Update with rev, then delete.
	resp, _ = doReq(t, "PUT", srv.URL+"/rec-1?rev="+rev, `{"mid":"8"}`, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("update status = %d", resp.StatusCode)
	}
	// Stale rev conflicts.
	resp, _ = doReq(t, "PUT", srv.URL+"/rec-1?rev="+rev, `{"mid":"9"}`, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("stale update status = %d", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	s := New("app", Options{})
	srv := newAPIServer(t, s)

	resp, _ := doReq(t, "GET", srv.URL+"/missing", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing doc status = %d", resp.StatusCode)
	}
	resp, _ = doReq(t, "PUT", srv.URL+"/x", "{bad json", nil)
	if resp.StatusCode != http.StatusInternalServerError && resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status = %d", resp.StatusCode)
	}
	resp, _ = doReq(t, "PUT", srv.URL+"/x", `{}`, map[string]string{"X-Safeweb-Labels": "garbage"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad labels status = %d", resp.StatusCode)
	}
	resp, _ = doReq(t, "GET", srv.URL+"/_view/none?key=1", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown view status = %d", resp.StatusCode)
	}
}

func TestHTTPReadOnly(t *testing.T) {
	s := New("dmz", Options{ReadOnly: true})
	srv := newAPIServer(t, s)
	resp, _ := doReq(t, "PUT", srv.URL+"/x", `{}`, nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("read-only PUT status = %d", resp.StatusCode)
	}
}

func TestHTTPViewAndChanges(t *testing.T) {
	s := New("app", Options{})
	s.RegisterView("by_mid", func(doc *Document) []string {
		var r struct {
			MID string `json:"mid"`
		}
		if err := json.Unmarshal(doc.Data, &r); err != nil {
			return nil
		}
		return []string{r.MID}
	})
	if _, err := s.Put("r1", json.RawMessage(`{"mid":"7"}`), label.NewSet(mdt7), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("r2", json.RawMessage(`{"mid":"8"}`), nil, ""); err != nil {
		t.Fatal(err)
	}
	srv := newAPIServer(t, s)

	resp, body := doReq(t, "GET", srv.URL+"/_view/by_mid?key=7", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("view status = %d", resp.StatusCode)
	}
	rows, _ := body["rows"].([]any)
	if len(rows) != 1 {
		t.Errorf("rows = %v", body["rows"])
	}
	if got := resp.Header.Get("X-Safeweb-Labels"); got != mdt7.String() {
		t.Errorf("view label header = %q", got)
	}

	resp, body = doReq(t, "GET", srv.URL+"/_changes?since=0", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("changes status = %d", resp.StatusCode)
	}
	results, _ := body["results"].([]any)
	if len(results) != 2 {
		t.Errorf("changes = %v", body["results"])
	}

	resp, body = doReq(t, "GET", srv.URL+"/_info", "", nil)
	if resp.StatusCode != http.StatusOK || body["doc_count"].(float64) != 2 {
		t.Errorf("info = %d %v", resp.StatusCode, body)
	}
}
