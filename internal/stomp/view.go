package stomp

// headerSpan locates one decoded header inside its view's flat scratch
// buffer. key holds the canonical interned name when the header is one of
// the common ones (see internHeaderKey), "" otherwise; the key bytes are
// always present in the buffer so KeyBytes works either way.
type headerSpan struct {
	key            string
	k0, k1, v0, v1 int
}

// HeaderView is a map-free, ordered view of one frame's decoded headers:
// a flat key/value span slice over a scratch buffer owned by the Decoder
// that produced it. It preserves wire order and repeated keys; lookups
// return the first occurrence, matching the first-wins rule the map
// materialisation applies.
//
// Ownership rules: a HeaderView is goroutine-confined to the read loop
// that decoded it and is invalidated by the next Decode/DecodeView call on
// the owning Decoder — the scratch buffer is reused. Callers that need the
// headers past that point must copy what they keep (Get/Key/Value return
// owned strings; Map materialises an owned map). KeyBytes/ValueBytes
// return sub-slices of the scratch buffer and must not be retained or
// mutated.
//
// Canonical header names (the internHeaderKey set) are interned: Key and
// InternedKey return the shared constant with no allocation, and consumers
// can classify headers by comparing InternedKey against the Hdr*
// constants without touching the byte form.
type HeaderView struct {
	buf   []byte
	spans []headerSpan
}

// Len returns the number of headers in wire order (repeated keys count
// each occurrence; content-length, consumed by body framing, is absent).
func (hv *HeaderView) Len() int { return len(hv.spans) }

// InternedKey returns the canonical interned name of header i, or "" when
// the key is not one of the common interned names (use KeyBytes then).
func (hv *HeaderView) InternedKey(i int) string { return hv.spans[i].key }

// KeyBytes returns the unescaped key of header i as a sub-slice of the
// view's scratch buffer: valid only until the next decode, never retained.
func (hv *HeaderView) KeyBytes(i int) []byte {
	sp := &hv.spans[i]
	return hv.buf[sp.k0:sp.k1:sp.k1]
}

// ValueBytes returns the unescaped value of header i as a sub-slice of the
// view's scratch buffer: valid only until the next decode, never retained.
func (hv *HeaderView) ValueBytes(i int) []byte {
	sp := &hv.spans[i]
	return hv.buf[sp.v0:sp.v1:sp.v1]
}

// Key returns the key of header i as an owned string (interned for common
// names, allocated otherwise).
func (hv *HeaderView) Key(i int) string {
	if k := hv.spans[i].key; k != "" {
		return k
	}
	return string(hv.KeyBytes(i))
}

// Value returns the value of header i as an owned string.
func (hv *HeaderView) Value(i int) string { return string(hv.ValueBytes(i)) }

func (hv *HeaderView) matches(i int, name string) bool {
	if k := hv.spans[i].key; k != "" {
		return k == name
	}
	return string(hv.KeyBytes(i)) == name
}

// GetBytes returns the value of the first header named name as a scratch
// sub-slice (see ValueBytes), and whether it was present.
func (hv *HeaderView) GetBytes(name string) ([]byte, bool) {
	for i := range hv.spans {
		if hv.matches(i, name) {
			return hv.ValueBytes(i), true
		}
	}
	return nil, false
}

// Get returns the value of the first header named name as an owned string,
// and whether it was present.
func (hv *HeaderView) Get(name string) (string, bool) {
	b, ok := hv.GetBytes(name)
	if !ok {
		return "", false
	}
	return string(b), true
}

// Header returns the value of the first header named name, or "" — the
// view counterpart of Frame.Header.
func (hv *HeaderView) Header(name string) string {
	v, _ := hv.Get(name)
	return v
}

// Map materialises the view into an owned header map with first-occurrence-
// wins semantics for repeated keys — the representation Frame carries.
func (hv *HeaderView) Map() map[string]string {
	m := make(map[string]string, len(hv.spans))
	for i := range hv.spans {
		kb := hv.KeyBytes(i)
		if _, dup := m[string(kb)]; dup {
			continue
		}
		m[hv.Key(i)] = hv.Value(i)
	}
	return m
}

// FrameView is the decoder's map-free representation of one frame: the
// interned command, a HeaderView over the decoder's scratch buffer, and
// the body. The headers share HeaderView's ownership rules (invalid after
// the next decode); the body is freshly allocated per frame and ownership
// transfers to the consumer, which may retain it.
type FrameView struct {
	Command string
	Headers HeaderView
	Body    []byte
}

// Materialize builds an owned Frame from the view, allocating the header
// map that map-based callers expect. This is the lazy escape hatch for
// code that mutates headers; hot read paths consume the view directly.
func (v *FrameView) Materialize() *Frame {
	return &Frame{Command: v.Command, Headers: v.Headers.Map(), Body: v.Body}
}

// ViewFromFrame builds a FrameView over a materialised frame, bridging
// map-based producers into view-based consumers (the broker's OnFrame
// adapter). Canonical keys are interned as the decoder would; header order
// is the map's iteration order. The returned view owns its buffer and
// stays valid as long as the caller holds it.
func ViewFromFrame(f *Frame) *FrameView {
	v := &FrameView{Command: f.Command, Body: f.Body}
	hv := &v.Headers
	for k, val := range f.Headers {
		var sp headerSpan
		kb := []byte(k)
		sp.key, _ = internHeaderKey(kb)
		sp.k0 = len(hv.buf)
		hv.buf = append(hv.buf, kb...)
		sp.k1 = len(hv.buf)
		sp.v0 = len(hv.buf)
		hv.buf = append(hv.buf, val...)
		sp.v1 = len(hv.buf)
		hv.spans = append(hv.spans, sp)
	}
	return v
}
