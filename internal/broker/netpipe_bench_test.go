package broker_test

import (
	"fmt"
	"testing"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/engine"
	"safeweb/internal/event"
	"safeweb/internal/journal"
	"safeweb/internal/label"
)

// pipeUnit adapts a name and init function to engine.Unit without pulling
// the engine test helpers into this external test package.
type pipeUnit struct {
	name string
	init func(ctx *engine.InitContext) error
}

func (u pipeUnit) Name() string                       { return u.name }
func (u pipeUnit) Init(ctx *engine.InitContext) error { return u.init(ctx) }

// BenchmarkNetworkPipeline measures the full networked hop an event takes
// between two engines (paper §4.2–4.3, E3/E6): a trigger reaches the
// producer engine over TCP STOMP, its callback publishes one labelled
// event back through the broker, and the consumer engine receives it on
// each of its fan-out subscriptions. Per trigger the wire carries one
// MESSAGE to the producer, one SEND from it, and fanout MESSAGE frames to
// the consumer, so the benchmark exercises STOMP framing, per-connection
// writes and engine dispatch — everything between two networked units.
func BenchmarkNetworkPipeline(b *testing.B) {
	for _, bc := range []struct {
		fanout, shards, window                int
		stalled, credited, durable, batchSync bool
	}{
		{fanout: 1, shards: 1}, {fanout: 1, shards: 1, window: 64}, {fanout: 10, shards: 1},
		{fanout: 100, shards: 1}, {fanout: 100, shards: 4}, {fanout: 100, shards: 1, stalled: true},
		{fanout: 100, shards: 1, credited: true}, {fanout: 100, shards: 1, durable: true},
		{fanout: 100, shards: 1, durable: true, batchSync: true},
	} {
		fanout, shards, window, stalled, credited, durable, batchSync :=
			bc.fanout, bc.shards, bc.window, bc.stalled, bc.credited, bc.durable, bc.batchSync
		name := fmt.Sprintf("fanout=%d", fanout)
		if shards > 1 {
			// The sharded variant spreads the consumer's subscriptions
			// over several STOMP connections; shards=1 keeps the
			// historical single-connection series comparable.
			name += fmt.Sprintf("/shards=%d", shards)
		}
		if window > 0 {
			// The windowed variant publishes through receipt-tracked
			// pipelined SENDs; window=0 keeps the historical
			// fire-and-forget series comparable.
			name += fmt.Sprintf("/window=%d", window)
		}
		if stalled {
			// The stalled variant adds one subscriber that completes the
			// handshake and then never reads — the slow-consumer case. The
			// write deadline bounds the one-time stall while its buffers
			// fill; after the deadline fires the dead session's writer
			// fails sticky and the fan-out must run at full speed, so this
			// series guards against reintroducing unbounded blocking on a
			// dead peer (CI asserts it stays within 1.5x of the healthy
			// fanout=100 series).
			name += "/stalled"
		}
		if credited {
			// The credited variant runs the consumer's subscriptions under
			// credit-based flow control with a window large enough that a
			// healthy consumer never stalls; it measures the steady-state
			// overhead of the credit fast path (one claim per delivery,
			// batched ACK grants on release) against the uncredited
			// fanout=100 series (CI asserts it stays within 1.15x).
			name += "/credited"
		}
		if durable {
			// The durable variant journals every published /bench/out event
			// (publish-tap append of the already-encoded wire image, default
			// no-fsync policy); the consumer subscriptions stay live, so the
			// series isolates what journaling adds to the publish path on
			// top of the healthy fanout=100 series (CI asserts it stays
			// within 1.5x and at the same per-trigger allocation budget).
			name += "/durable"
			if batchSync {
				// The batched-sync variant runs the same journaled publish
				// path under journal.SyncBatch: fsyncs coalesced by bytes or
				// interval, with records published only once their batch is
				// synced. It prices the durability upgrade against the
				// no-fsync durable series (CI holds it to the same 1.5x ns/op
				// and per-trigger allocation budgets as the durable series).
				name += "-batched-sync"
			}
		}
		b.Run(name, func(b *testing.B) {
			policy := label.NewPolicy()
			policy.Grant("consumer", label.Clearance,
				label.MustParsePattern("label:conf:ecric.org.uk/*"))
			policy.Grant("producer", label.Clearance,
				label.MustParsePattern("label:conf:ecric.org.uk/*"))
			scfg := broker.ServerConfig{Logf: b.Logf}
			if durable {
				scfg.Durable = []string{"/bench/out"}
				scfg.JournalDir = b.TempDir()
				if batchSync {
					scfg.JournalSync = journal.SyncBatch
				}
			}
			if stalled {
				policy.Grant("stalled", label.Clearance,
					label.MustParsePattern("label:conf:ecric.org.uk/*"))
				scfg.WriteTimeout = 50 * time.Millisecond
				// The dead session's post-deadline deliveries all fail;
				// don't let their per-drop log lines become the benchmark.
				scfg.OnDeliveryError = func(uint64, string, *event.Event, error) {}
			}
			br := broker.New(policy)
			defer br.Close()
			srv, err := broker.NewServer("127.0.0.1:0", br, scfg)
			if err != nil {
				b.Fatalf("NewServer: %v", err)
			}
			defer srv.Close()
			if stalled {
				conn := dialStalled(b, srv.Addr(), "stalled", "/bench/out", "s-0")
				defer conn.Close()
			}

			newEngine := func(busShards, credit int) *engine.Engine {
				e, err := engine.New(engine.Config{
					Policy: policy,
					Bus: func(principal string) (broker.Bus, error) {
						cfg := broker.ClientConfig{
							Login:           principal,
							Shards:          busShards,
							SubscribeCredit: credit,
							OnError:         func(err error) { b.Logf("bus error: %v", err) },
						}
						if window > 0 {
							cfg.PublishWindow = window
							cfg.SendTimeout = 10 * time.Second
						}
						return broker.DialBus(srv.Addr(), cfg)
					},
					QueueSize: 1024,
					Logf:      b.Logf,
				})
				if err != nil {
					b.Fatalf("engine.New: %v", err)
				}
				return e
			}
			producer := newEngine(1, 0)
			defer producer.Stop()
			consumerCredit := 0
			if credited {
				// Large enough that the engine queue, not the credit window,
				// is the backpressure bound for a healthy consumer.
				consumerCredit = 512
			}
			consumer := newEngine(shards, consumerCredit)
			defer consumer.Stop()

			payload := []byte(`{"patient_id": 33812769, "type": "cancer", "summary": "report"}`)
			mdt := label.Conf("ecric.org.uk/mdt/7")
			err = producer.AddUnit(pipeUnit{name: "producer", init: func(ctx *engine.InitContext) error {
				return ctx.Subscribe("/bench/trigger", "", func(ctx *engine.Context, ev *event.Event) error {
					return ctx.Publish("/bench/out", nil, payload, engine.WithAdd(mdt))
				})
			}})
			if err != nil {
				b.Fatalf("AddUnit producer: %v", err)
			}
			err = consumer.AddUnit(pipeUnit{name: "consumer", init: func(ctx *engine.InitContext) error {
				for i := 0; i < fanout; i++ {
					if err := ctx.Subscribe("/bench/out", "", func(ctx *engine.Context, ev *event.Event) error {
						return nil
					}); err != nil {
						return err
					}
				}
				return nil
			}})
			if err != nil {
				b.Fatalf("AddUnit consumer: %v", err)
			}

			trigger := event.New("/bench/trigger", nil)
			want := uint64(b.N * fanout)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := br.Publish("driver", trigger); err != nil {
					b.Fatalf("Publish: %v", err)
				}
			}
			deadline := time.Now().Add(2 * time.Minute)
			for consumer.Stats().EventsProcessed < want {
				if time.Now().After(deadline) {
					b.Fatalf("processed %d of %d events", consumer.Stats().EventsProcessed, want)
				}
				time.Sleep(100 * time.Microsecond)
			}
			b.StopTimer()
			b.ReportMetric(float64(want)/b.Elapsed().Seconds(), "events/s")
			if got := consumer.Stats().CallbackErrors + producer.Stats().CallbackErrors; got != 0 {
				b.Fatalf("%d callback errors", got)
			}
		})
	}
}
