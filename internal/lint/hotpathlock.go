package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// hotpathDirective marks a function whose body — and every unexported
// same-package helper it transitively calls — must stay lock-free and
// allocation-free. It goes in the function's doc comment:
//
//	//safeweb:hotpath
const hotpathDirective = "//safeweb:hotpath"

// HotPathLock enforces the fan-out/encode fast-path discipline on
// functions annotated //safeweb:hotpath: no mutex Lock/RLock, no map or
// slice literal allocation (composite literals or make), no package fmt
// calls, and no interface-boxing conversions of non-pointer values,
// checked transitively through unexported same-package helpers. A
// //lint:ignore hotpathlock comment on a call site stops the walk into
// that callee (a declared slow path); on a statement it suppresses the
// diagnostic.
var HotPathLock = &analysis.Analyzer{
	Name: "hotpathlock",
	Doc:  "flag locks, map/slice allocation, fmt calls and interface boxing in //safeweb:hotpath functions",
	Run:  runHotPathLock,
}

func runHotPathLock(pass *analysis.Pass) (interface{}, error) {
	sup := newSuppressor(pass, "hotpathlock")
	decls := funcBodies(pass)

	// Roots: every annotated declaration, in file order.
	type root struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var roots []root
	for fn, decl := range decls {
		if hasHotpathDirective(decl) {
			roots = append(roots, root{fn, decl})
		}
	}
	if len(roots) == 0 {
		return nil, nil
	}

	reported := make(map[token.Pos]bool)
	for _, r := range roots {
		w := &hotpathWalker{
			pass:     pass,
			sup:      sup,
			decls:    decls,
			root:     funcLabel(r.fn),
			visited:  map[*ast.FuncDecl]bool{},
			reported: reported,
		}
		w.walk(r.decl, funcLabel(r.fn))
	}
	return nil, nil
}

func hasHotpathDirective(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// funcLabel renders Type.Method or Func for diagnostics.
func funcLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n, ok := namedType(sig.Recv().Type()); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

type hotpathWalker struct {
	pass     *analysis.Pass
	sup      *suppressor
	decls    map[*types.Func]*ast.FuncDecl
	root     string
	visited  map[*ast.FuncDecl]bool
	reported map[token.Pos]bool // dedupe across roots sharing a helper
}

func (w *hotpathWalker) reportf(node ast.Node, format string, args ...interface{}) {
	if w.reported[node.Pos()] || w.sup.suppressed(node.Pos()) {
		return
	}
	w.reported[node.Pos()] = true
	w.sup.reportf(node, format, args...)
}

// walk checks one function body and recurses into unexported same-package
// callees. via names the call chain from the root for diagnostics.
func (w *hotpathWalker) walk(decl *ast.FuncDecl, via string) {
	if w.visited[decl] {
		return
	}
	w.visited[decl] = true

	sig, _ := w.pass.TypesInfo.Defs[decl.Name].Type().(*types.Signature)
	w.checkBody(decl.Body, sig, via)
}

func (w *hotpathWalker) checkBody(body *ast.BlockStmt, sig *types.Signature, via string) {
	// Track the innermost function signature for return-statement boxing
	// checks; nested literals swap it in.
	var inspect func(n ast.Node, sig *types.Signature)
	inspect = func(n ast.Node, sig *types.Signature) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				lsig, _ := w.pass.TypesInfo.TypeOf(n.Type).(*types.Signature)
				inspect(n.Body, lsig)
				return false
			case *ast.CallExpr:
				w.checkCall(n, via)
			case *ast.CompositeLit:
				w.checkCompositeLit(n, via)
			case *ast.AssignStmt:
				w.checkAssignBoxing(n, via)
			case *ast.ReturnStmt:
				w.checkReturnBoxing(n, sig, via)
			case *ast.SendStmt:
				if ch, ok := w.pass.TypesInfo.TypeOf(n.Chan).(*types.Chan); ok {
					w.checkBoxedExpr(n.Value, ch.Elem(), via)
				}
			}
			return true
		})
	}
	inspect(body, sig)
}

func (w *hotpathWalker) checkCall(call *ast.CallExpr, via string) {
	// Type conversions: flag concrete non-pointer -> interface.
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			w.checkBoxedExpr(call.Args[0], tv.Type, via)
		}
		return
	}

	callee := typeutil.Callee(w.pass.TypesInfo, call)
	if b, ok := callee.(*types.Builtin); ok {
		if b.Name() == "make" && len(call.Args) > 0 {
			switch w.pass.TypesInfo.TypeOf(call.Args[0]).Underlying().(type) {
			case *types.Map:
				w.reportf(call, "hotpath %s: %s allocates a map with make on the fast path", w.root, via)
			case *types.Slice:
				w.reportf(call, "hotpath %s: %s allocates a slice with make on the fast path", w.root, via)
			}
		}
		return
	}
	if fn, ok := callee.(*types.Func); ok {
		full := fn.FullName()
		switch full {
		case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock", "(sync.Locker).Lock":
			w.reportf(call, "hotpath %s: %s takes %s on the fast path (the fan-out/encode hot paths must never take a lock)", w.root, via, full)
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			w.reportf(call, "hotpath %s: %s calls fmt.%s on the fast path (fmt formats through reflection and allocates)", w.root, via, fn.Name())
		}

		// Boxing at the call boundary.
		if sig, ok := fn.Type().(*types.Signature); ok {
			w.checkCallArgBoxing(call, sig, via)
		}

		// Transitive walk into unexported same-package helpers, unless
		// the call site is an ignored (declared slow path) edge.
		if fn.Pkg() == w.pass.Pkg && !fn.Exported() && !w.sup.suppressed(call.Pos()) {
			if decl, ok := w.decls[fn]; ok {
				w.walkCallee(decl, fn, via)
			}
		}
		return
	}

	// Function values and interface methods cannot be resolved; check
	// boxing against their signature when available.
	if sig, ok := w.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature); ok {
		w.checkCallArgBoxing(call, sig, via)
	}
}

func (w *hotpathWalker) walkCallee(decl *ast.FuncDecl, fn *types.Func, via string) {
	if w.visited[decl] {
		return
	}
	w.visited[decl] = true
	sig, _ := fn.Type().(*types.Signature)
	w.checkBody(decl.Body, sig, via+" -> "+funcLabel(fn))
}

func (w *hotpathWalker) checkCompositeLit(lit *ast.CompositeLit, via string) {
	t := w.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		w.reportf(lit, "hotpath %s: %s allocates a map literal on the fast path", w.root, via)
	case *types.Slice:
		w.reportf(lit, "hotpath %s: %s allocates a slice literal on the fast path", w.root, via)
	}
}

// checkCallArgBoxing flags concrete non-pointer arguments passed to
// interface-typed parameters, the implicit conversions that allocate on
// the hot path. make/len-style builtins have no *types.Signature and
// never reach here.
func (w *hotpathWalker) checkCallArgBoxing(call *ast.CallExpr, sig *types.Signature, via string) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				// Passing a slice through ... is not a per-element box.
				continue
			}
			pt = params.At(params.Len() - 1).Type()
			if s, ok := pt.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		w.checkBoxedExpr(arg, pt, via)
	}
}

func (w *hotpathWalker) checkAssignBoxing(assign *ast.AssignStmt, via string) {
	if assign.Tok != token.ASSIGN || len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, rhs := range assign.Rhs {
		lt := w.pass.TypesInfo.TypeOf(assign.Lhs[i])
		if lt != nil {
			w.checkBoxedExpr(rhs, lt, via)
		}
	}
}

func (w *hotpathWalker) checkReturnBoxing(ret *ast.ReturnStmt, sig *types.Signature, via string) {
	if sig == nil || sig.Results() == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		w.checkBoxedExpr(res, sig.Results().At(i).Type(), via)
	}
}

// checkBoxedExpr reports expr when assigning it to target boxes a
// concrete non-pointer value into an interface. Pointers, existing
// interface values and nil convert without allocating and are exempt.
func (w *hotpathWalker) checkBoxedExpr(expr ast.Expr, target types.Type, via string) {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return
	}
	tv, ok := w.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	src := types.Unalias(tv.Type)
	if types.IsInterface(src.Underlying()) {
		return
	}
	if _, isPtr := src.Underlying().(*types.Pointer); isPtr {
		return
	}
	w.reportf(expr, "hotpath %s: %s boxes a %s into %s on the fast path (interface conversion of a non-pointer value allocates)", w.root, via, tv.Type.String(), target.String())
}
