package stomp

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// MessageHandler consumes MESSAGE frames delivered to one subscription.
// Handlers run on the client's read goroutine; long-running work should be
// handed off by the caller (SafeWeb's engine runs callbacks on their own
// goroutines, mirroring the paper's per-callback threads).
type MessageHandler func(f *Frame)

// MessageViewHandler consumes MESSAGE frames as decoder views, skipping
// the header-map materialisation MessageHandler pays. Handlers run on the
// client's read goroutine; the view and its headers are invalid once the
// handler returns (the next decode reuses the scratch buffer), while the
// body's ownership transfers to the handler.
type MessageViewHandler func(v *FrameView)

// subscriber holds the handler registered for one subscription id, in
// exactly one of its two forms.
type subscriber struct {
	mh MessageHandler
	vh MessageViewHandler
}

// ClientConfig configures a Client.
type ClientConfig struct {
	// Login identifies the principal; the broker uses it for policy
	// lookups.
	Login string
	// Passcode authenticates the login.
	Passcode string
	// TLS, when non-nil, dials with TLS.
	TLS *tls.Config
	// ConnectTimeout bounds dialing and the CONNECT handshake;
	// zero means 10 seconds.
	ConnectTimeout time.Duration
	// OnError receives server ERROR frames and read-loop failures; nil
	// drops them.
	OnError func(err error)
	// WriteQueueLen is the connection's writer queue length in frames;
	// zero selects the default (128). Dial rejects negative values.
	WriteQueueLen int
	// WriteTimeout bounds every write and flush of the connection's
	// writer: a broker that stops reading fails the connection with a
	// sticky deadline error instead of wedging the writer goroutine
	// forever. Zero disables the deadline.
	WriteTimeout time.Duration
}

// Client is a STOMP client connection. All methods are safe for concurrent
// use. Outbound frames pass through a write-coalescing writer goroutine:
// bursts of SEND frames are encoded back-to-back and flushed once per
// batch, while control frames (SUBSCRIBE, DISCONNECT, anything carrying a
// receipt request) flush immediately.
type Client struct {
	cfg  ClientConfig
	conn net.Conn
	fw   *frameWriter

	mu       sync.Mutex
	subs     map[string]subscriber
	receipts map[string]chan struct{}
	nextID   uint64
	closed   bool

	// inHandler is set while the read loop runs a MessageHandler. A
	// Subscribe issued from inside a handler cannot wait for its RECEIPT
	// (only the read loop could deliver it), so it degrades to an
	// unconfirmed subscribe instead of deadlocking.
	inHandler atomic.Bool

	readDone chan struct{}
}

// Dial connects and performs the CONNECT handshake.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	timeout := cfg.ConnectTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	queueLen, err := resolveWriteQueueLen(cfg.WriteQueueLen)
	if err != nil {
		return nil, fmt.Errorf("stomp: ClientConfig.WriteQueueLen: %w", err)
	}
	if cfg.WriteTimeout < 0 {
		return nil, fmt.Errorf("stomp: ClientConfig.WriteTimeout must not be negative, got %v", cfg.WriteTimeout)
	}
	dialer := &net.Dialer{Timeout: timeout}
	var conn net.Conn
	if cfg.TLS != nil {
		conn, err = tls.DialWithDialer(dialer, "tcp", addr, cfg.TLS)
	} else {
		conn, err = dialer.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("stomp: dial %s: %w", addr, err)
	}

	c := &Client{
		cfg:      cfg,
		conn:     conn,
		subs:     make(map[string]subscriber),
		receipts: make(map[string]chan struct{}),
		readDone: make(chan struct{}),
	}
	// A write error kills the connection so the read loop unblocks and
	// reports through OnError; the writer goroutine must not wait on
	// Close (which waits on it in turn).
	c.fw = newFrameWriter(conn, queueLen, cfg.WriteTimeout, func(error) { _ = conn.Close() })
	fail := func(err error) (*Client, error) {
		_ = conn.Close()
		_ = c.fw.close()
		return nil, err
	}

	connect := NewFrame(CmdConnect)
	connect.SetHeader(HdrLogin, cfg.Login)
	connect.SetHeader(HdrPasscode, cfg.Passcode)
	connect.SetHeader("accept-version", "1.1")
	if err := c.writeFrame(connect); err != nil {
		return fail(err)
	}

	// Await CONNECTED synchronously before starting the dispatch loop.
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return fail(fmt.Errorf("stomp: set deadline: %w", err))
	}
	dec := NewDecoder(conn)
	resp, err := dec.Decode()
	if err != nil {
		return fail(fmt.Errorf("stomp: handshake: %w", err))
	}
	switch resp.Command {
	case CmdConnected:
	case CmdError:
		return fail(fmt.Errorf("stomp: connection refused: %s: %s", resp.Header(HdrMessage), resp.Body))
	default:
		return fail(protoErrorf("expected CONNECTED, got %s", resp.Command))
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return fail(fmt.Errorf("stomp: clear deadline: %w", err))
	}

	go c.readLoop(dec)
	return c, nil
}

func (c *Client) writeFrame(f *Frame) error {
	return c.fw.send(outFrame{f: f, flush: frameNeedsFlush(f)})
}

func (c *Client) readLoop(dec *Decoder) {
	defer close(c.readDone)
	// The connection is dead once the read loop exits; shut the writer
	// down too so an abandoned Client (caller never invokes Close after
	// OnError) does not leak the writer goroutine and its buffers.
	defer func() { _ = c.fw.close() }()
	for {
		v, err := dec.DecodeView()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if !closed && c.cfg.OnError != nil {
				c.cfg.OnError(fmt.Errorf("stomp: read: %w", err))
			}
			return
		}
		switch v.Command {
		case CmdMessage:
			sb, _ := v.Headers.GetBytes(HdrSubscription)
			c.mu.Lock()
			h := c.subs[string(sb)] // compiler elides the conversion
			c.mu.Unlock()
			switch {
			case h.vh != nil:
				c.inHandler.Store(true)
				h.vh(v)
				c.inHandler.Store(false)
			case h.mh != nil:
				c.inHandler.Store(true)
				h.mh(v.Materialize())
				c.inHandler.Store(false)
			}
		case CmdReceipt:
			rb, _ := v.Headers.GetBytes(HdrReceiptID)
			c.mu.Lock()
			ch := c.receipts[string(rb)]
			delete(c.receipts, string(rb))
			c.mu.Unlock()
			if ch != nil {
				close(ch)
			}
		case CmdError:
			if c.cfg.OnError != nil {
				c.cfg.OnError(fmt.Errorf("stomp: server error: %s: %s", v.Headers.Header(HdrMessage), v.Body))
			}
		}
	}
}

// Send publishes a SEND frame to the destination with the given headers
// and body. Reserved routing headers (destination) are set from arguments.
func (c *Client) Send(destination string, headers map[string]string, body []byte) error {
	f := NewFrame(CmdSend)
	for k, v := range headers {
		f.SetHeader(k, v)
	}
	f.SetHeader(HdrDestination, destination)
	f.Body = body
	return c.writeFrame(f)
}

// SendReceipt is Send with a receipt: it blocks until the broker confirms
// processing or the timeout elapses.
func (c *Client) SendReceipt(destination string, headers map[string]string, body []byte, timeout time.Duration) error {
	f := NewFrame(CmdSend)
	for k, v := range headers {
		f.SetHeader(k, v)
	}
	f.SetHeader(HdrDestination, destination)
	f.Body = body
	return c.sendWithReceipt(f, timeout)
}

// SendImage publishes a preencoded SEND image, fire-and-forget: the
// producer fast path counterpart of Send. The image is written as-is by
// the connection's coalescing writer — no header map, no frame, no
// per-publish marshalling on the client goroutine.
func (c *Client) SendImage(img *WireImage) error {
	return c.fw.send(outFrame{img: img})
}

// SendImageReceipt is SendImage with a receipt: it blocks until the
// broker confirms processing or the timeout elapses (zero means 10
// seconds). Like every synchronous receipt send it flushes immediately —
// the caller is already waiting, so batching would only add latency.
func (c *Client) SendImageReceipt(img *WireImage, timeout time.Duration) error {
	r, err := c.sendImageReceipt(img, true)
	if err != nil {
		return err
	}
	return r.Wait(timeout)
}

// Receipt tracks one receipt-confirmed frame in flight, for windowed
// asynchronous publishing: the caller pipelines further sends and settles
// confirmations later via Wait. Receipts for one connection complete in
// send order (the broker processes frames sequentially), so waiting on
// the oldest outstanding receipt bounds the whole window.
type Receipt struct {
	c  *Client
	id string
	ch chan struct{}
}

// SendImageAsync enqueues a receipt-carrying SEND image and returns
// immediately with the pending receipt. Unlike the synchronous receipt
// paths it does not force a flush: nothing blocks on this frame yet, so
// it coalesces with the rest of the burst (the writer still flushes once
// per drained batch).
func (c *Client) SendImageAsync(img *WireImage) (*Receipt, error) {
	return c.sendImageReceipt(img, false)
}

func (c *Client) sendImageReceipt(img *WireImage, flush bool) (*Receipt, error) {
	rid, ch, err := c.registerReceipt()
	if err != nil {
		return nil, err
	}
	if err := c.fw.send(outFrame{img: img, receipt: rid, flush: flush}); err != nil {
		c.dropReceipt(rid)
		return nil, err
	}
	return &Receipt{c: c, id: rid, ch: ch}, nil
}

// registerReceipt mints a receipt id and registers its wait channel; the
// single receipt lifecycle shared by the synchronous and windowed paths.
func (c *Client) registerReceipt() (string, chan struct{}, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", nil, net.ErrClosed
	}
	c.nextID++
	rid := "rcpt-" + strconv.FormatUint(c.nextID, 10)
	ch := make(chan struct{})
	c.receipts[rid] = ch
	return rid, ch, nil
}

// dropReceipt deregisters a receipt that will never be waited on again.
func (c *Client) dropReceipt(rid string) {
	c.mu.Lock()
	delete(c.receipts, rid)
	c.mu.Unlock()
}

// Done returns a channel closed when the broker's RECEIPT arrives. It
// does not observe connection failure; use Wait for that.
func (r *Receipt) Done() <-chan struct{} { return r.ch }

// Wait blocks until the broker confirms the frame, the connection dies,
// or the timeout elapses (zero means 10 seconds). A confirmation that
// already arrived wins over a concurrent connection teardown.
func (r *Receipt) Wait(timeout time.Duration) error {
	select {
	case <-r.ch:
		return nil
	default:
	}
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-r.ch:
		return nil
	case <-r.c.readDone:
		// The read loop may have delivered the receipt just before dying.
		select {
		case <-r.ch:
			return nil
		default:
		}
		return net.ErrClosed
	case <-timer.C:
		r.c.dropReceipt(r.id)
		return fmt.Errorf("stomp: receipt %s timed out after %v", r.id, timeout)
	}
}

// Subscribe registers a subscription on a destination with an optional
// SQL-92 selector and extra headers (SafeWeb's engine adds the clearance
// header here). It returns the subscription id. "Subscriptions include
// unique identifiers to simplify the handling of subscriptions issued by
// different units" (§4.2).
//
// The SUBSCRIBE frame is receipt-confirmed: Subscribe returns only after
// the broker has processed the registration, so events published on other
// connections afterwards cannot race past the subscription. The
// confirmation arrives on the read loop, so a Subscribe issued from
// within a MessageHandler skips the wait (fire-and-forget, the pre-PR
// behaviour) rather than deadlocking against itself.
func (c *Client) Subscribe(destination, sel string, extraHeaders map[string]string, handler MessageHandler) (string, error) {
	if handler == nil {
		return "", errors.New("stomp: nil subscription handler")
	}
	return c.subscribe(destination, sel, extraHeaders, subscriber{mh: handler})
}

// SubscribeView is Subscribe with a map-free handler: delivered MESSAGE
// frames are handed over as decoder views, skipping the per-frame header
// map. See MessageViewHandler for the view's lifetime rules; everything
// else (receipt confirmation, selector, extra headers) matches Subscribe.
func (c *Client) SubscribeView(destination, sel string, extraHeaders map[string]string, handler MessageViewHandler) (string, error) {
	if handler == nil {
		return "", errors.New("stomp: nil subscription handler")
	}
	return c.subscribe(destination, sel, extraHeaders, subscriber{vh: handler})
}

func (c *Client) subscribe(destination, sel string, extraHeaders map[string]string, h subscriber) (string, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return "", net.ErrClosed
	}
	c.nextID++
	id := "sub-" + strconv.FormatUint(c.nextID, 10)
	c.subs[id] = h
	c.mu.Unlock()

	f := NewFrame(CmdSubscribe)
	f.SetHeader(HdrID, id)
	f.SetHeader(HdrDestination, destination)
	if sel != "" {
		f.SetHeader(HdrSelector, sel)
	}
	for k, v := range extraHeaders {
		f.SetHeader(k, v)
	}
	err := error(nil)
	if c.inHandler.Load() {
		err = c.writeFrame(f)
	} else {
		err = c.sendWithReceipt(f, 10*time.Second)
	}
	if err != nil {
		c.mu.Lock()
		delete(c.subs, id)
		c.mu.Unlock()
		return "", err
	}
	return id, nil
}

// Unsubscribe cancels a subscription by id.
func (c *Client) Unsubscribe(id string) error {
	c.mu.Lock()
	delete(c.subs, id)
	c.mu.Unlock()
	f := NewFrame(CmdUnsubscribe)
	f.SetHeader(HdrID, id)
	return c.writeFrame(f)
}

// sendWithReceipt attaches a receipt header, sends, and waits.
func (c *Client) sendWithReceipt(f *Frame, timeout time.Duration) error {
	rid, ch, err := c.registerReceipt()
	if err != nil {
		return err
	}
	f.SetHeader(HdrReceipt, rid)
	if err := c.writeFrame(f); err != nil {
		c.dropReceipt(rid)
		return err
	}
	r := Receipt{c: c, id: rid, ch: ch}
	return r.Wait(timeout)
}

// Disconnect performs a graceful DISCONNECT with receipt, then closes.
func (c *Client) Disconnect(timeout time.Duration) error {
	f := NewFrame(CmdDisconnect)
	err := c.sendWithReceipt(f, timeout)
	closeErr := c.Close()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return closeErr
}

// Close tears the connection down, draining already-queued frames under
// the writer's close deadline so a stalled broker cannot wedge teardown.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	_ = c.fw.close()
	err := c.conn.Close()
	<-c.readDone
	return err
}
