package broker

import (
	"crypto/tls"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"safeweb/internal/event"
	"safeweb/internal/stomp"
)

// ClientConfig configures a networked broker client.
type ClientConfig struct {
	// Login is the policy principal this client acts as.
	Login string
	// Passcode authenticates the login.
	Passcode string
	// TLS enables transport security.
	TLS *tls.Config
	// SendTimeout bounds receipt-confirmed publishes; zero means
	// fire-and-forget SENDs.
	SendTimeout time.Duration
	// OnError receives asynchronous errors (decode failures, server
	// errors); nil drops them. With Shards > 1 it is invoked from every
	// shard's read goroutine, possibly concurrently, so it must be safe
	// for concurrent use.
	OnError func(error)
	// Shards is the number of STOMP connections this client spreads its
	// subscriptions across; 0 or 1 means a single connection (the default,
	// wire-identical to the pre-sharding client). Subscriptions are placed
	// round-robin and each lives wholly on one connection, so wire bytes
	// and per-subscription delivery order are unchanged; publishes always
	// travel on the first connection, preserving publish order. Sharding
	// pays off for subscription-heavy consumers: frame decoding spreads
	// across per-connection read loops and broker-side encoding across
	// per-session coalescing writers.
	Shards int
}

// ErrUnknownSubscription is returned by Unsubscribe for an id this client
// did not mint. Sharded clients cannot pass unknown ids through to a
// connection: connection-local ids repeat across shards, so a blind
// forward could tear down an unrelated live subscription.
var ErrUnknownSubscription = errors.New("broker: unknown subscription id")

// Client is a Bus implementation over a remote STOMP broker. It lets an
// engine (or any producer/consumer) run in a different process or network
// zone from the broker, as in the paper's ECRIC deployment where the event
// broker is a separate service inside the Intranet (Fig. 4).
type Client struct {
	cfg    ClientConfig
	shards []*clientShard
	rr     atomic.Uint64 // round-robin subscription placement

	mu   sync.Mutex
	subs map[string]shardSub // qualified id -> placement
}

// clientShard is one STOMP connection of a sharded client, with the
// decode memos confined to its read loop.
type clientShard struct {
	conn *stomp.Client

	// cache memoises label-header parses and the topic string across this
	// shard's deliveries. All of the shard's subscription handlers run on
	// its connection read goroutine, so the cache is goroutine-confined.
	cache event.DecodeCache
}

// shardSub records where a subscription lives so Unsubscribe can route to
// the right connection.
type shardSub struct {
	shard int
	raw   string
}

var _ Bus = (*Client)(nil)

// DialBus connects to a broker server, establishing cfg.Shards STOMP
// connections (one by default).
func DialBus(addr string, cfg ClientConfig) (*Client, error) {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	c := &Client{cfg: cfg, subs: make(map[string]shardSub)}
	for i := 0; i < n; i++ {
		sc, err := stomp.Dial(addr, stomp.ClientConfig{
			Login:    cfg.Login,
			Passcode: cfg.Passcode,
			TLS:      cfg.TLS,
			OnError:  cfg.OnError,
		})
		if err != nil {
			for _, sh := range c.shards {
				_ = sh.conn.Close()
			}
			return nil, err
		}
		c.shards = append(c.shards, &clientShard{conn: sc})
	}
	return c, nil
}

// Publish implements Bus. Publishes always use the first connection so
// that events published by one client reach the broker in publish order.
func (c *Client) Publish(ev *event.Event) error {
	headers, body, err := event.MarshalHeaders(ev)
	if err != nil {
		return err
	}
	dest := headers[event.HeaderDestination]
	delete(headers, event.HeaderDestination)
	if c.cfg.SendTimeout > 0 {
		return c.shards[0].conn.SendReceipt(dest, headers, body, c.cfg.SendTimeout)
	}
	return c.shards[0].conn.Send(dest, headers, body)
}

// Subscribe implements Bus. The subscription is placed on one connection
// (round-robin across shards) and its deliveries are decoded map-free:
// the STOMP frame view feeds event.UnmarshalView in a single pass, with
// body ownership handed to the event.
func (c *Client) Subscribe(topic, sel string, handler Handler) (string, error) {
	idx := 0
	if len(c.shards) > 1 {
		idx = int((c.rr.Add(1) - 1) % uint64(len(c.shards)))
	}
	sh := c.shards[idx]
	raw, err := sh.conn.SubscribeView(topic, sel, nil, func(v *stomp.FrameView) {
		// Delivery unmarshal: the event comes from the delivery pool and
		// is recycled (Event.Release) when its consumer — the engine's
		// subscription worker — finishes the callback. Handlers must not
		// retain it past their own return.
		ev, err := event.UnmarshalViewDelivery(&v.Headers, v.Body, &sh.cache)
		if err != nil {
			if c.cfg.OnError != nil {
				c.cfg.OnError(err)
			}
			return
		}
		handler(ev)
	})
	if err != nil {
		return "", err
	}
	id := raw
	if len(c.shards) > 1 {
		// Connection-local ids ("sub-1") repeat across shards; qualify.
		id = "s" + strconv.Itoa(idx) + ":" + raw
	}
	c.mu.Lock()
	c.subs[id] = shardSub{shard: idx, raw: raw}
	c.mu.Unlock()
	return id, nil
}

// Unsubscribe implements Bus.
func (c *Client) Unsubscribe(id string) error {
	c.mu.Lock()
	ref, ok := c.subs[id]
	delete(c.subs, id)
	c.mu.Unlock()
	if !ok {
		if len(c.shards) > 1 {
			// An unqualified id must not be forwarded to an arbitrary
			// shard: connection-local ids ("sub-1") repeat across shards,
			// so shard 0 may hold a different live subscription under the
			// same id and a blind pass-through would tear it down while
			// stranding its c.subs entry.
			return ErrUnknownSubscription
		}
		// Single connection: pass through, preserving the behaviour for
		// ids minted directly on the underlying stomp client.
		return c.shards[0].conn.Unsubscribe(id)
	}
	return c.shards[ref.shard].conn.Unsubscribe(ref.raw)
}

// Close implements Bus with a graceful disconnect of every shard.
func (c *Client) Close() error {
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *clientShard) {
			defer wg.Done()
			errs[i] = sh.conn.Disconnect(5 * time.Second)
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
