package webfront

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"safeweb/internal/taint"
)

// startServer boots an app on a live listener for cookie tests.
func startServer(t *testing.T, app *App) string {
	t.Helper()
	srv := httptest.NewServer(app)
	t.Cleanup(srv.Close)
	return srv.URL
}

func TestSessionAuthFlow(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	app.EnableSessionAuth(time.Hour)
	app.Get("/whoami", func(c *Ctx) error {
		c.WriteString(c.User.Username)
		return nil
	})
	base := startServer(t, app)

	// Open a session with basic credentials.
	req, _ := http.NewRequest(http.MethodPost, base+"/session", nil)
	req.SetBasicAuth("alice", "pw-a")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("login status = %d", resp.StatusCode)
	}
	var cookie *http.Cookie
	for _, c := range resp.Cookies() {
		if c.Name == SessionCookie {
			cookie = c
		}
	}
	if cookie == nil || cookie.Value == "" {
		t.Fatal("no session cookie set")
	}

	// Cookie alone authenticates.
	req, _ = http.NewRequest(http.MethodGet, base+"/whoami", nil)
	req.AddCookie(cookie)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "alice" {
		t.Fatalf("cookie auth = %d %q", resp.StatusCode, body)
	}

	// Logout invalidates the cookie.
	req, _ = http.NewRequest(http.MethodPost, base+"/logout", nil)
	req.AddCookie(cookie)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	req, _ = http.NewRequest(http.MethodGet, base+"/whoami", nil)
	req.AddCookie(cookie)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("after logout = %d", resp.StatusCode)
	}
}

func TestSessionExpiry(t *testing.T) {
	app, db := newTestApp(t, Config{})
	app.EnableSessionAuth(time.Hour)
	app.Get("/x", func(c *Ctx) error { c.WriteString("ok"); return nil })
	base := startServer(t, app)

	alice, err := db.FindUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	expired := db.CreateSession(alice.ID, -time.Second)
	req, _ := http.NewRequest(http.MethodGet, base+"/x", nil)
	req.AddCookie(&http.Cookie{Name: SessionCookie, Value: expired.Token})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("expired session = %d", resp.StatusCode)
	}
}

func TestSmartcardAuth(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	app.RegisterSmartcard("nhs-card-123", "alice")
	app.Get("/whoami", func(c *Ctx) error {
		c.WriteString(c.User.Username)
		return nil
	})
	app.Get("/secret", func(c *Ctx) error {
		c.Write(taint.NewString("classified", mdt7))
		return nil
	})
	base := startServer(t, app)

	do := func(path, token string) (int, string) {
		req, _ := http.NewRequest(http.MethodGet, base+path, nil)
		if token != "" {
			req.Header.Set(SmartcardHeader, token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if status, body := do("/whoami", "nhs-card-123"); status != http.StatusOK || body != "alice" {
		t.Errorf("smartcard auth = %d %q", status, body)
	}
	if status, _ := do("/whoami", "wrong-card"); status != http.StatusUnauthorized {
		t.Errorf("bad card = %d", status)
	}
	// The release check applies identically: alice holds mdt7 clearance,
	// so the secret is served via smartcard too.
	if status, body := do("/secret", "nhs-card-123"); status != http.StatusOK || !strings.Contains(body, "classified") {
		t.Errorf("smartcard labelled fetch = %d %q", status, body)
	}
}

func TestSmartcardUnknownUser(t *testing.T) {
	app, _ := newTestApp(t, Config{})
	app.RegisterSmartcard("card", "ghost")
	app.Get("/x", func(c *Ctx) error { c.WriteString("ok"); return nil })
	base := startServer(t, app)

	req, _ := http.NewRequest(http.MethodGet, base+"/x", nil)
	req.Header.Set(SmartcardHeader, "card")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("ghost card = %d", resp.StatusCode)
	}
}
