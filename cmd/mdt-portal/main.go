// Command mdt-portal runs the paper's MDT web portal (§5.1) as a long-
// running service: the full Fig. 4 deployment on one machine, with the
// web frontend bound to -http.
//
// Usage:
//
//	mdt-portal -http 127.0.0.1:8080 -patients 500 [-network-broker] [-import-every 30s]
//
// Accounts are provisioned per MDT (username = MDT id) plus "admin"; the
// shared password defaults to "mdt-password" (or set -password).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/journal"
	"safeweb/internal/maindb"
	"safeweb/internal/mdt"
)

func main() {
	httpAddr := flag.String("http", "127.0.0.1:8080", "frontend listen address")
	patients := flag.Int("patients", 500, "synthetic registry size")
	seed := flag.Int64("seed", 2026, "registry generation seed")
	password := flag.String("password", "", "account password (random default)")
	networkBroker := flag.Bool("network-broker", false, "run units over the STOMP network broker")
	publishWindow := flag.Int("publish-window", 0,
		"receipt-confirmed publishes in flight per unit (with -network-broker; 0 = fire-and-forget)")
	overflow := flag.String("overflow", "block",
		"slow-consumer overflow policy for broker sessions (with -network-broker): block, drop-newest, drop-oldest or disconnect")
	writeQueue := flag.Int("write-queue", 0,
		"per-session delivery queue length in frames (with -network-broker; 0 = default 128)")
	writeTimeout := flag.Duration("write-timeout", 0,
		"per-flush write deadline for broker sessions (with -network-broker; 0 = unbounded)")
	subscribeCredit := flag.Int("subscribe-credit", 0,
		"per-subscription delivery window in messages, replenished as units complete callbacks (with -network-broker; 0 = no credit flow control)")
	durable := flag.String("durable", "",
		"comma-separated topic patterns the broker journals for replay and resume (with -network-broker; requires -journal-dir)")
	journalDir := flag.String("journal-dir", "",
		"directory for the durable topic journals (with -durable)")
	retentionAge := flag.Duration("journal-retention-age", 0,
		"delete journal segments whose newest record is older than this (with -durable; 0 = unbounded)")
	retentionBytes := flag.Int64("journal-retention-bytes", 0,
		"per-topic journal byte budget, oldest segments deleted first (with -durable; 0 = unbounded)")
	journalSync := flag.String("journal-sync", "never",
		"journal fsync policy (with -durable): never, batch or always")
	importEvery := flag.Duration("import-every", 0, "periodic re-import interval (0 = import once)")
	flag.Parse()

	policy, err := broker.ParseOverflowPolicy(*overflow)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdt-portal:", err)
		os.Exit(2)
	}
	syncPolicy, err := journal.ParseSyncPolicy(*journalSync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdt-portal:", err)
		os.Exit(2)
	}
	var durableTopics []string
	if *durable != "" {
		durableTopics = strings.Split(*durable, ",")
	}
	cfg := mdt.DeployConfig{
		Registry:              maindb.Config{Seed: *seed, Patients: *patients},
		Password:              *password,
		NetworkBroker:         *networkBroker,
		PublishWindow:         *publishWindow,
		Overflow:              policy,
		WriteQueueLen:         *writeQueue,
		WriteTimeout:          *writeTimeout,
		SubscribeCredit:       *subscribeCredit,
		Durable:               durableTopics,
		JournalDir:            *journalDir,
		JournalRetentionAge:   *retentionAge,
		JournalRetentionBytes: *retentionBytes,
		JournalSync:           syncPolicy,
		Logf:                  log.Printf,
	}
	if err := run(cfg, *httpAddr, *patients, *importEvery); err != nil {
		fmt.Fprintln(os.Stderr, "mdt-portal:", err)
		os.Exit(1)
	}
}

func run(cfg mdt.DeployConfig, httpAddr string, patients int, importEvery time.Duration) error {
	d, err := mdt.Deploy(cfg)
	if err != nil {
		return err
	}
	defer d.Stop()

	log.Printf("importing %d patients through the backend pipeline", patients)
	if err := d.ImportAll(); err != nil {
		return err
	}
	log.Printf("import complete: %d documents (%d on the DMZ replica)", d.AppDB.Len(), d.DMZDB.Len())

	addr, err := d.ServeHTTP(httpAddr)
	if err != nil {
		return err
	}
	anyMDT := ""
	if mdts := d.Registry.MDTs(); len(mdts) > 0 {
		anyMDT = mdts[0].ID
	}
	log.Printf("portal on http://%s — log in as an MDT id (e.g. %q) or \"admin\", password %q",
		addr, anyMDT, d.Creds["admin"])

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)

	if importEvery > 0 {
		ticker := time.NewTicker(importEvery)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				if err := d.ImportAll(); err != nil {
					log.Printf("periodic import: %v", err)
				}
			}
		}()
	}

	<-stop
	front := d.Frontend.Stats()
	log.Printf("shutting down: %d requests served, %d blocked by the release check, %d auth failures",
		front.Requests, front.Blocked, front.AuthFailures)
	if d.BrokerServer != nil {
		bs := d.BrokerServer.Stats()
		log.Printf("broker front: %d deliveries dropped, %d overflow drops, %d slow-consumer evictions, queue high-water %d, %d credit stalls, %d unhandled frames",
			bs.DroppedDeliveries, bs.OverflowDrops, bs.SlowConsumerEvictions, bs.QueueHighWater,
			bs.CreditStalls, bs.UnhandledFrames)
		if len(cfg.Durable) > 0 {
			log.Printf("durable topics: %d journal appends (%d failed), %d replay deliveries, %d filtered by clearance",
				bs.DurableAppends, bs.JournalAppendErrors, bs.ReplayDeliveries, bs.ReplayFiltered)
			log.Printf("journal retention: %d acked segments compacted, %d retention deletes, %d clamped resumes",
				bs.CompactedSegments, bs.RetentionDeletes, bs.ClampedResumes)
		}
	}
	return nil
}
