// Package maindb is the substitute for ECRIC's main cancer registration
// database (paper §2.1): "the main cancer registration database, hosted in
// a secure private network, holds structured information about patients,
// tumours, and associated treatments."
//
// Real registry data is NHS-confidential, so the package generates
// deterministic synthetic records with the same structure: patients
// assigned to hospitals and multidisciplinary teams (MDTs), tumours with
// ICD-10-style site codes and stages, and treatments. Fields are left
// blank with a configurable probability so that the MDT portal's
// data-completeness metrics (functional requirement F2) have something to
// measure.
package maindb

import (
	"fmt"
	"math/rand"
)

// Patient is one registry patient row.
type Patient struct {
	// ID is the registry patient id (the paper's example label uses an
	// 8-digit id: label:conf:ecric.org.uk/patient/33812769).
	ID string
	// Name is the patient's name; may be empty in incomplete records.
	Name string
	// NHSNumber is the 10-digit NHS number; may be empty.
	NHSNumber string
	// BirthYear is the year of birth.
	BirthYear int
	// Hospital is the treating hospital id.
	Hospital string
	// Clinic is the cancer clinic type (breast, lung, ...).
	Clinic string
	// MDT is the multidisciplinary team id treating the patient.
	MDT string
	// Region is the hospital's region.
	Region string
}

// Tumour is one registered tumour.
type Tumour struct {
	ID        string
	PatientID string
	// Site is an ICD-10-style topography code, e.g. "C50.9".
	Site string
	// Stage is 1-4, or 0 when unstaged (incomplete).
	Stage int
	// Type is the record type attribute used in subscriptions
	// ("cancer" for confirmed cases, "screening" otherwise).
	Type string
}

// Treatment is one treatment row.
type Treatment struct {
	ID        string
	TumourID  string
	PatientID string
	// Kind is surgery, chemotherapy, radiotherapy or hormone.
	Kind string
	// Completed reports whether the treatment finished.
	Completed bool
}

// MDT describes one multidisciplinary team: a (hospital, clinic) pair in a
// region, mirroring the Listing 3 privilege rows keyed by hospital and
// clinic.
type MDT struct {
	ID       string
	Hospital string
	Clinic   string
	Region   string
}

// DB is the generated registry.
type DB struct {
	patients   []Patient
	tumours    []Tumour
	treatments []Treatment
	mdts       []MDT

	byMDT       map[string][]int // patient indexes per MDT id
	tumoursOf   map[string][]int
	treatsOf    map[string][]int
	mdtByID     map[string]MDT
	regionNames []string
}

// Config controls generation. The zero value is usable: it yields a small
// deterministic registry.
type Config struct {
	// Seed fixes the random stream; equal configs generate equal data.
	Seed int64
	// Patients is the number of patients; zero means 200.
	Patients int
	// Hospitals is the number of hospitals; zero means 4.
	Hospitals int
	// Regions is the number of regions; zero means 2.
	Regions int
	// MissingFieldRate is the probability (0..1) that an optional field
	// is blank; negative means 0.15.
	MissingFieldRate float64
}

func (c Config) withDefaults() Config {
	if c.Patients == 0 {
		c.Patients = 200
	}
	if c.Hospitals == 0 {
		c.Hospitals = 4
	}
	if c.Regions == 0 {
		c.Regions = 2
	}
	if c.MissingFieldRate < 0 {
		c.MissingFieldRate = 0.15
	} else if c.MissingFieldRate == 0 {
		c.MissingFieldRate = 0.15
	}
	return c
}

var (
	_clinics = []string{"breast", "colorectal", "lung", "skin"}
	_sites   = map[string][]string{
		"breast":     {"C50.1", "C50.4", "C50.9"},
		"colorectal": {"C18.2", "C18.7", "C20"},
		"lung":       {"C34.1", "C34.3", "C34.9"},
		"skin":       {"C43.5", "C43.7", "C44.3"},
	}
	_firstNames = []string{"John", "Mary", "Ahmed", "Grace", "Wei", "Elena", "Oluwaseun", "Padma", "Liam", "Sofia"}
	_lastNames  = []string{"Smith", "Jones", "Patel", "O'Brien", "Chen", "Kowalski", "Okafor", "Rossi", "Khan", "Taylor"}
	_kinds      = []string{"surgery", "chemotherapy", "radiotherapy", "hormone"}
)

// Generate builds a synthetic registry.
func Generate(cfg Config) *DB {
	cfg = cfg.withDefaults()
	rnd := rand.New(rand.NewSource(cfg.Seed))

	db := &DB{
		byMDT:     make(map[string][]int),
		tumoursOf: make(map[string][]int),
		treatsOf:  make(map[string][]int),
		mdtByID:   make(map[string]MDT),
	}

	for r := 0; r < cfg.Regions; r++ {
		db.regionNames = append(db.regionNames, fmt.Sprintf("region-%d", r+1))
	}

	// One MDT per (hospital, clinic).
	mdtSeq := 0
	for h := 0; h < cfg.Hospitals; h++ {
		hospital := fmt.Sprintf("hospital-%d", h+1)
		region := db.regionNames[h%cfg.Regions]
		for _, clinic := range _clinics {
			mdtSeq++
			m := MDT{
				ID:       fmt.Sprintf("mdt-%d", mdtSeq),
				Hospital: hospital,
				Clinic:   clinic,
				Region:   region,
			}
			db.mdts = append(db.mdts, m)
			db.mdtByID[m.ID] = m
		}
	}

	maybe := func(s string) string {
		if rnd.Float64() < cfg.MissingFieldRate {
			return ""
		}
		return s
	}

	for i := 0; i < cfg.Patients; i++ {
		m := db.mdts[rnd.Intn(len(db.mdts))]
		p := Patient{
			ID:        fmt.Sprintf("%08d", 30000000+rnd.Intn(9999999)*10+i%10),
			Name:      maybe(_firstNames[rnd.Intn(len(_firstNames))] + " " + _lastNames[rnd.Intn(len(_lastNames))]),
			NHSNumber: maybe(fmt.Sprintf("%010d", 4000000000+rnd.Int63n(999999999))),
			BirthYear: 1930 + rnd.Intn(70),
			Hospital:  m.Hospital,
			Clinic:    m.Clinic,
			MDT:       m.ID,
			Region:    m.Region,
		}
		db.byMDT[m.ID] = append(db.byMDT[m.ID], len(db.patients))
		db.patients = append(db.patients, p)

		nTumours := 1
		if rnd.Float64() < 0.1 {
			nTumours = 2
		}
		for tIdx := 0; tIdx < nTumours; tIdx++ {
			sites := _sites[m.Clinic]
			typ := "cancer"
			if rnd.Float64() < 0.2 {
				typ = "screening"
			}
			stage := 1 + rnd.Intn(4)
			if rnd.Float64() < cfg.MissingFieldRate {
				stage = 0 // unstaged: an incomplete record
			}
			tum := Tumour{
				ID:        fmt.Sprintf("t-%s-%d", p.ID, tIdx+1),
				PatientID: p.ID,
				Site:      sites[rnd.Intn(len(sites))],
				Stage:     stage,
				Type:      typ,
			}
			db.tumoursOf[p.ID] = append(db.tumoursOf[p.ID], len(db.tumours))
			db.tumours = append(db.tumours, tum)

			for k := 0; k < 1+rnd.Intn(2); k++ {
				tr := Treatment{
					ID:        fmt.Sprintf("tr-%s-%d", tum.ID, k+1),
					TumourID:  tum.ID,
					PatientID: p.ID,
					Kind:      _kinds[rnd.Intn(len(_kinds))],
					Completed: rnd.Float64() < 0.6,
				}
				db.treatsOf[p.ID] = append(db.treatsOf[p.ID], len(db.treatments))
				db.treatments = append(db.treatments, tr)
			}
		}
	}
	return db
}

// Patients returns all patients.
func (db *DB) Patients() []Patient { return append([]Patient(nil), db.patients...) }

// PatientsByMDT returns the patients treated by the given MDT.
func (db *DB) PatientsByMDT(mdtID string) []Patient {
	idxs := db.byMDT[mdtID]
	out := make([]Patient, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, db.patients[i])
	}
	return out
}

// TumoursOf returns a patient's tumours.
func (db *DB) TumoursOf(patientID string) []Tumour {
	idxs := db.tumoursOf[patientID]
	out := make([]Tumour, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, db.tumours[i])
	}
	return out
}

// TreatmentsOf returns a patient's treatments.
func (db *DB) TreatmentsOf(patientID string) []Treatment {
	idxs := db.treatsOf[patientID]
	out := make([]Treatment, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, db.treatments[i])
	}
	return out
}

// MDTs returns all multidisciplinary teams.
func (db *DB) MDTs() []MDT { return append([]MDT(nil), db.mdts...) }

// MDTByID resolves an MDT id.
func (db *DB) MDTByID(id string) (MDT, bool) {
	m, ok := db.mdtByID[id]
	return m, ok
}

// Regions returns the region names.
func (db *DB) Regions() []string { return append([]string(nil), db.regionNames...) }

// Completeness scores how complete a patient's record is: the fraction of
// the checked fields (name, NHS number, staging of each tumour) that are
// present. The MDT portal's F2 metric aggregates this per MDT.
func (db *DB) Completeness(p Patient) float64 {
	checked, present := 0, 0
	checked++
	if p.Name != "" {
		present++
	}
	checked++
	if p.NHSNumber != "" {
		present++
	}
	for _, t := range db.TumoursOf(p.ID) {
		checked++
		if t.Stage > 0 {
			present++
		}
	}
	if checked == 0 {
		return 0
	}
	return float64(present) / float64(checked)
}
