package broker_test

import (
	"testing"
	"time"

	"safeweb/internal/broker"
	"safeweb/internal/event"
	"safeweb/internal/label"
)

// BenchmarkClientPublish measures the producer-bound half of the wire in
// isolation: one networked client publishing labelled, attr-carrying
// events into the broker's STOMP front (no subscribers — the fan-out side
// has its own benchmarks). Modes compare the publish disciplines: sync
// pays a receipt round trip per publish, window pipelines receipt-tracked
// publishes through the coalescing writer, fireforget sends without
// receipts. All modes wait for the broker to have accepted every publish
// before the clock stops, so events/s is ingest throughput, not enqueue
// rate.
func BenchmarkClientPublish(b *testing.B) {
	for _, bc := range []struct {
		name      string
		window    int
		pubShards int
		timeout   time.Duration
	}{
		{name: "sync", timeout: 5 * time.Second},
		{name: "window=64", window: 64, timeout: 5 * time.Second},
		{name: "window=64/pubshards=2", window: 64, pubShards: 2, timeout: 5 * time.Second},
		{name: "fireforget"},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			policy := label.NewPolicy()
			br := broker.New(policy)
			defer br.Close()
			srv, err := broker.NewServer("127.0.0.1:0", br, broker.ServerConfig{Logf: b.Logf})
			if err != nil {
				b.Fatalf("NewServer: %v", err)
			}
			defer srv.Close()

			cl, err := broker.DialBus(srv.Addr(), broker.ClientConfig{
				Login:         "producer",
				PublishWindow: bc.window,
				PublishShards: bc.pubShards,
				SendTimeout:   bc.timeout,
				OnError:       func(err error) { b.Logf("bus error: %v", err) },
			})
			if err != nil {
				b.Fatalf("DialBus: %v", err)
			}
			defer cl.Close()

			payload := []byte(`{"patient_id": 33812769, "type": "cancer", "summary": "report"}`)
			mdt := label.Conf("ecric.org.uk/mdt/7")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := event.New("/bench/ingest",
					map[string]string{"type": "cancer"}, mdt)
				ev.Body = payload
				if err := cl.Publish(ev); err != nil {
					b.Fatalf("Publish: %v", err)
				}
			}
			if err := cl.Flush(); err != nil {
				b.Fatalf("Flush: %v", err)
			}
			deadline := time.Now().Add(2 * time.Minute)
			for br.Stats().Published < uint64(b.N) {
				if time.Now().After(deadline) {
					b.Fatalf("broker accepted %d of %d publishes", br.Stats().Published, b.N)
				}
				time.Sleep(100 * time.Microsecond)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
