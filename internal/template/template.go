// Package template implements a small ERB-style template engine whose
// rendering propagates security labels: the rendered page is a
// taint.String carrying the labels of every value interpolated into it.
//
// The paper's MDT portal uses "ERB for embedding Ruby in web pages"
// (§5.1); with the Ruby taint-tracking library, labels flow through ERB
// because ERB builds its output by ordinary string concatenation. Our
// frontend gets the same effect by routing interpolation through
// taint.String composition.
//
// Syntax:
//
//	<%= expr %>    interpolate, HTML-escaped
//	<%== expr %>   interpolate raw (trusted markup only)
//	<% if expr %> ... <% else %> ... <% end %>
//	<% for x in expr %> ... <% end %>
//
// Expressions are dotted paths into the render context ("patient.name",
// "metrics.completeness"), loop variables, string literals in double
// quotes, or equality/inequality comparisons of two of those.
package template

import (
	"errors"
	"fmt"
	"html"
	"strings"

	"safeweb/internal/label"
	"safeweb/internal/taint"
)

// Template is a parsed template, safe for concurrent rendering.
type Template struct {
	name string
	root []node
}

// Context supplies values during rendering. Values may be taint.String,
// taint.Number, taint.Doc, []taint.Doc, []any, bool, plain strings and
// numbers, or nested map[string]any.
type Context map[string]any

// ParseError reports a template syntax error.
type ParseError struct {
	// Name is the template name.
	Name string
	// Msg describes the problem.
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("template %s: %s", e.Name, e.Msg)
}

// node is a parsed template element.
type node interface {
	render(out *builder, scope *scope) error
}

// builder accumulates output text and labels.
type builder struct {
	text   strings.Builder
	labels []label.Set
}

func (b *builder) writeRaw(s string) { b.text.WriteString(s) }

func (b *builder) writeValue(s taint.String, escape bool) {
	raw := s.Raw()
	if escape {
		raw = html.EscapeString(raw)
	}
	b.text.WriteString(raw)
	if !s.Labels().IsEmpty() {
		b.labels = append(b.labels, s.Labels())
	}
}

// scope is the variable environment during rendering: the base context
// plus loop variables.
type scope struct {
	ctx  Context
	vars map[string]any
}

func (s *scope) lookup(name string) (any, bool) {
	if v, ok := s.vars[name]; ok {
		return v, true
	}
	v, ok := s.ctx[name]
	return v, ok
}

func (s *scope) child(name string, value any) *scope {
	vars := make(map[string]any, len(s.vars)+1)
	for k, v := range s.vars {
		vars[k] = v
	}
	vars[name] = value
	return &scope{ctx: s.ctx, vars: vars}
}

// textNode is literal template text.
type textNode struct{ text string }

func (n textNode) render(out *builder, _ *scope) error {
	out.writeRaw(n.text)
	return nil
}

// exprNode interpolates an expression.
type exprNode struct {
	expr   expr
	escape bool
}

func (n exprNode) render(out *builder, sc *scope) error {
	v, err := n.expr.eval(sc)
	if err != nil {
		return err
	}
	out.writeValue(toTaintString(v), n.escape)
	return nil
}

// ifNode renders one of two branches.
type ifNode struct {
	cond      expr
	then, alt []node
}

func (n ifNode) render(out *builder, sc *scope) error {
	v, err := n.cond.eval(sc)
	if err != nil {
		return err
	}
	branch := n.alt
	if truthy(v) {
		branch = n.then
	}
	for _, child := range branch {
		if err := child.render(out, sc); err != nil {
			return err
		}
	}
	return nil
}

// forNode iterates a list.
type forNode struct {
	varName string
	list    expr
	body    []node
}

func (n forNode) render(out *builder, sc *scope) error {
	v, err := n.list.eval(sc)
	if err != nil {
		return err
	}
	items, err := toList(v)
	if err != nil {
		return fmt.Errorf("template: for %s: %w", n.varName, err)
	}
	for _, item := range items {
		childScope := sc.child(n.varName, item)
		for _, child := range n.body {
			if err := child.render(out, childScope); err != nil {
				return err
			}
		}
	}
	return nil
}

// Render evaluates the template against the context, producing a labelled
// string that carries the labels of everything interpolated.
func (t *Template) Render(ctx Context) (taint.String, error) {
	out := &builder{}
	sc := &scope{ctx: ctx}
	for _, n := range t.root {
		if err := n.render(out, sc); err != nil {
			return taint.String{}, err
		}
	}
	// Literal template text is unlabelled; only interpolated labels count.
	// Using union (not Derive) keeps integrity labels that every
	// interpolation shares out of scope: pages mix trusted markup with
	// data, so the page itself makes no integrity claim.
	var all label.Set
	for _, set := range out.labels {
		all = all.Union(set)
	}
	return taint.WrapString(out.text.String(), all), nil
}

// Name returns the template's name.
func (t *Template) Name() string { return t.name }

// toTaintString renders any supported context value as a labelled string.
func toTaintString(v any) taint.String {
	switch t := v.(type) {
	case taint.String:
		return t
	case taint.Number:
		return t.Format(-1)
	case taint.Doc:
		s, err := t.ToJSON()
		if err != nil {
			return taint.NewString("{}")
		}
		return s
	case string:
		return taint.NewString(t)
	case int:
		return taint.NewString(fmt.Sprint(t))
	case float64:
		return taint.NewString(strings.TrimSuffix(fmt.Sprintf("%v", t), ".0"))
	case bool:
		return taint.NewString(fmt.Sprint(t))
	case nil:
		return taint.String{}
	default:
		return taint.NewString(fmt.Sprint(t))
	}
}

// truthy decides <% if %> conditions: non-empty strings and lists,
// non-zero numbers and true are truthy.
func truthy(v any) bool {
	switch t := v.(type) {
	case nil:
		return false
	case bool:
		return t
	case string:
		return t != ""
	case int:
		return t != 0
	case float64:
		return t != 0
	case taint.String:
		return !t.IsEmpty()
	case taint.Number:
		return t.Float() != 0
	case []any:
		return len(t) > 0
	case []taint.Doc:
		return len(t) > 0
	case taint.Doc:
		return len(t) > 0
	default:
		return true
	}
}

// toList coerces a value into a slice for <% for %>.
func toList(v any) ([]any, error) {
	switch t := v.(type) {
	case []any:
		return t, nil
	case []taint.Doc:
		out := make([]any, len(t))
		for i, d := range t {
			out[i] = d
		}
		return out, nil
	case []taint.String:
		out := make([]any, len(t))
		for i, s := range t {
			out[i] = s
		}
		return out, nil
	case nil:
		return nil, nil
	default:
		return nil, fmt.Errorf("value of type %T is not iterable", v)
	}
}

// ---- expressions ----

// expr is a template expression.
type expr interface {
	eval(sc *scope) (any, error)
}

// pathExpr resolves a dotted path: the head in the scope, then fields
// through docs/maps.
type pathExpr struct{ parts []string }

func (e pathExpr) eval(sc *scope) (any, error) {
	v, ok := sc.lookup(e.parts[0])
	if !ok {
		return nil, fmt.Errorf("template: unknown variable %q", e.parts[0])
	}
	for _, part := range e.parts[1:] {
		switch t := v.(type) {
		case taint.Doc:
			v = t[part]
		case map[string]any:
			v = t[part]
		case Context:
			v = t[part]
		case nil:
			return nil, nil
		default:
			return nil, fmt.Errorf("template: cannot access %q of %T", part, v)
		}
	}
	return v, nil
}

// litExpr is a double-quoted string literal.
type litExpr struct{ s string }

func (e litExpr) eval(*scope) (any, error) { return e.s, nil }

// cmpExpr compares two operands for equality by rendered content.
type cmpExpr struct {
	l, r expr
	neq  bool
}

func (e cmpExpr) eval(sc *scope) (any, error) {
	lv, err := e.l.eval(sc)
	if err != nil {
		return nil, err
	}
	rv, err := e.r.eval(sc)
	if err != nil {
		return nil, err
	}
	eq := toTaintString(lv).Raw() == toTaintString(rv).Raw()
	if e.neq {
		eq = !eq
	}
	return eq, nil
}

// notExpr negates truthiness.
type notExpr struct{ inner expr }

func (e notExpr) eval(sc *scope) (any, error) {
	v, err := e.inner.eval(sc)
	if err != nil {
		return nil, err
	}
	return !truthy(v), nil
}

var errEmptyExpr = errors.New("empty expression")

// parseExpr parses "a.b", "\"lit\"", "not e", "e == e", "e != e".
func parseExpr(src string) (expr, error) {
	src = strings.TrimSpace(src)
	if src == "" {
		return nil, errEmptyExpr
	}
	if rest, ok := strings.CutPrefix(src, "not "); ok {
		inner, err := parseExpr(rest)
		if err != nil {
			return nil, err
		}
		return notExpr{inner: inner}, nil
	}
	for _, op := range []struct {
		tok string
		neq bool
	}{{"==", false}, {"!=", true}} {
		if l, r, ok := cutOutsideQuotes(src, op.tok); ok {
			le, err := parseExpr(l)
			if err != nil {
				return nil, err
			}
			re, err := parseExpr(r)
			if err != nil {
				return nil, err
			}
			return cmpExpr{l: le, r: re, neq: op.neq}, nil
		}
	}
	if strings.HasPrefix(src, `"`) {
		if !strings.HasSuffix(src, `"`) || len(src) < 2 {
			return nil, fmt.Errorf("unterminated string literal %s", src)
		}
		return litExpr{s: src[1 : len(src)-1]}, nil
	}
	parts := strings.Split(src, ".")
	for _, p := range parts {
		if p == "" || strings.ContainsAny(p, " \t\"=!<>") {
			return nil, fmt.Errorf("malformed path %q", src)
		}
	}
	return pathExpr{parts: parts}, nil
}

// cutOutsideQuotes splits src on the first occurrence of sep that is not
// inside a double-quoted literal.
func cutOutsideQuotes(src, sep string) (string, string, bool) {
	inQuote := false
	for i := 0; i+len(sep) <= len(src); i++ {
		if src[i] == '"' {
			inQuote = !inQuote
			continue
		}
		if !inQuote && src[i:i+len(sep)] == sep {
			return src[:i], src[i+len(sep):], true
		}
	}
	return "", "", false
}
