package broker

// subsSnapshot exposes the current subscription list for tests.
func (b *Broker) subsSnapshot() []*Subscription {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]*Subscription, 0, len(b.subs))
	for _, sub := range b.subs {
		out = append(out, sub)
	}
	return out
}
